package engine

import (
	"errors"
	"fmt"
	"time"

	"isgc/internal/bitset"
	"isgc/internal/checkpoint"
	"isgc/internal/dataset"
	"isgc/internal/events"
	"isgc/internal/linalg"
	"isgc/internal/model"
	"isgc/internal/simclock"
	"isgc/internal/straggler"
	"isgc/internal/trace"
)

// Config describes one training run.
type Config struct {
	// Strategy is the straggler-mitigation scheme under test.
	Strategy Strategy
	// Model is the workload.
	Model model.Model
	// Data is the full training set; it is split into Strategy.N() equal
	// partitions.
	Data *dataset.Dataset
	// BatchSize is the per-partition mini-batch size.
	BatchSize int
	// LearningRate is the SGD step size η.
	LearningRate float64
	// LRSchedule, when non-nil, multiplies LearningRate per step (e.g.
	// step-decay or 1/t decay); it must return positive factors.
	LRSchedule func(step int) float64
	// Momentum is the classical heavy-ball coefficient μ ∈ [0, 1): the
	// update keeps a velocity v ← μ·v + ĝ_mean and steps by η·v. Zero
	// (the default) is plain SGD; the paper's torch.optim.SGD exposes the
	// same knob.
	Momentum float64
	// WeightDecay is an L2 penalty coefficient λ added to the gradient as
	// λ·β (decoupled from the loss evaluation, like torch's SGD).
	WeightDecay float64
	// W is the number of workers the master waits for each step (flexible
	// schemes only; Sync-SGD and classic GC override it).
	W int
	// WSchedule, when non-nil, overrides W per step for flexible schemes:
	// the master waits for WSchedule(step) workers. This implements the
	// adaptive policy sketched in Sec. IV of the paper — "receive
	// gradients from fewer workers at the beginning to save time, and
	// then from more workers afterwards until convergence". Rigid schemes
	// (Sync-SGD, classic GC) still override the value.
	WSchedule func(step int) int
	// Deadline, when positive, switches the gather from fastest-w to the
	// deadline policy of Sec. IV: each step the master accepts exactly
	// the workers that finish within Deadline. When nobody makes the
	// deadline the master waits for the single fastest worker (an empty
	// step would make no progress) and the step is charged that worker's
	// arrival time. Rigid schemes ignore it. Takes precedence over
	// WSchedule.
	Deadline time.Duration
	// Staleness, when positive, simulates the cluster's pipelined
	// bounded-staleness mode (cluster.MasterConfig.Staleness): the master
	// waits for only max(1, WaitFor(W)−Staleness) workers each step, and
	// every straggler keeps uploading in the background — its remaining
	// simulated time carries across steps, and when it runs out the late
	// gradient lands in that step's gather window and folds into the
	// parameters as the exact correction that retroactively includes it
	// in its own step's normalized update (conflicting partitions cannot
	// fold and are dropped). Uploads still in flight after Staleness
	// steps are abandoned. Flexible schemes only; requires Momentum == 0
	// and WeightDecay == 0 (folds compose additively on plain SGD) and
	// excludes Deadline. A checkpoint restore resumes with an empty
	// in-flight queue: uploads pending at the snapshot are dropped.
	Staleness int
	// MaxSteps bounds the run.
	MaxSteps int
	// LossThreshold stops the run once the full-training-set loss drops
	// to or below it; 0 disables the threshold (the paper trains "until
	// the training loss reaches a given threshold").
	LossThreshold float64
	// ComputePerPartition and Upload parameterize the simulated step time
	// (see simclock); both may be zero for pure-convergence experiments.
	ComputePerPartition time.Duration
	Upload              time.Duration
	// Profile injects straggler delays (nil = none).
	Profile *straggler.Profile
	// ComputeFactors optionally makes the fleet heterogeneous: worker i's
	// compute time is scaled by ComputeFactors[i] (see simclock). Nil
	// means homogeneous.
	ComputeFactors []float64
	// Seed drives parameter initialization and batch sampling; runs with
	// equal seeds start from identical parameters and see identical
	// batches, mirroring the paper's controlled-seed methodology.
	Seed int64
	// EvalEvery controls how often the full training loss is evaluated
	// (every step if ≤ 1). Loss records between evaluations repeat the
	// last value.
	EvalEvery int
	// Parallel computes the per-partition gradients of a step on separate
	// goroutines. Results are bit-identical to the serial path (each
	// partition writes its own slot); worth enabling for large models.
	Parallel bool
	// ComputePar sets the compute pool size explicitly: 1 forces the
	// sequential path, >1 uses that many long-lived workers, and 0 defers
	// to Parallel (true = GOMAXPROCS, false = sequential). Whatever the
	// value, parallelism stays at partition granularity, so results are
	// bit-identical to the sequential path.
	ComputePar int
	// DecodeCache, when positive, memoizes decode results in an LRU of
	// that many availability masks (isgc schemes only; see
	// isgc.Scheme.EnableDecodeCache for the fairness tradeoff). Repeated
	// masks then skip the decoder's rng draws, so runs with the cache on
	// may pick different — equally large — independent sets than runs
	// with it off.
	DecodeCache int
	// IncrementalDecode, when true, repairs the previous step's chosen
	// worker set against the availability delta instead of re-solving from
	// scratch (isgc schemes only; see isgc.Scheme.EnableIncrementalDecode).
	// Results keep the exact maximum-recovery guarantee; like the decode
	// cache, the repair path freezes the randomized tie-breaking while the
	// mask drifts, so it is opt-in.
	IncrementalDecode bool
	// Metrics, when non-nil, receives live instrumentation (step wall
	// time, decode MIS size, partitions recovered); serve it via the
	// admin package. Nil costs one branch per step.
	Metrics *Metrics
	// Events, when non-nil, receives structured run/step events. Nil
	// disables event logging.
	Events *events.Log
	// Attribution, when non-nil, accumulates per-worker compute/arrival
	// samples from the simulated clock so the straggler-attribution
	// report works for in-process experiments exactly as it does for the
	// TCP cluster. Nil costs one branch per step.
	Attribution *trace.Attribution
	// Checkpoint, when non-nil, persists a durable snapshot every
	// CheckpointEvery steps plus a final one marked Completed. Restore
	// resumes from the newest valid snapshot; the resumed run's records
	// and final params are bit-identical to an uninterrupted run from the
	// checkpoint boundary on (DecodeCache off — see DESIGN.md
	// "Durability").
	Checkpoint *checkpoint.Store
	// CheckpointEvery is the period in steps (0 = final checkpoint only).
	CheckpointEvery int
	// Restore resumes from Checkpoint's newest valid snapshot when one
	// exists; a fresh directory cold-starts.
	Restore bool
	// Interrupt, when non-nil, is polled at every step boundary: returning
	// true stops the run there, writes a final (non-Completed) checkpoint
	// when Checkpoint is set, and returns with Result.Interrupted. This is
	// the graceful-shutdown hook the CLIs wire to SIGTERM/SIGINT.
	Interrupt func(step int) bool
}

// Result summarizes a completed run.
type Result struct {
	// Run holds the per-step records.
	Run trace.Run
	// Params is the final parameter vector.
	Params []float64
	// Converged reports whether the loss threshold was reached before
	// MaxSteps.
	Converged bool
	// StepsToThreshold is the 1-based step count at convergence
	// (== Run.Steps() when Converged; MaxSteps otherwise).
	StepsToThreshold int
	// Interrupted reports the run stopped early via Config.Interrupt; the
	// final checkpoint (if any) is resumable, not Completed.
	Interrupted bool
}

// RandStateful is the optional Strategy capability behind checkpointing:
// schemes whose decode draws from a seeded RNG (IS-GC's fairness
// tie-breaks) expose the stream position so a checkpoint can capture it
// and a restore can land on the exact next draw.
type RandStateful interface {
	// RandState returns the RNG's (seed, draws-so-far) position.
	RandState() (seed int64, draws uint64)
	// RestoreRandState repositions the RNG.
	RestoreRandState(seed int64, draws uint64)
}

// DecodeCacher is the optional Strategy capability behind Config.DecodeCache:
// schemes whose decode is a pure function of the availability mask (IS-GC)
// expose memoization through it. See isgc.Scheme.EnableDecodeCache.
type DecodeCacher interface {
	// EnableDecodeCache turns on an LRU of the given capacity.
	EnableDecodeCache(capacity int)
	// SetDecodeCacheHooks registers hit/miss callbacks (either may be nil).
	SetDecodeCacheHooks(onHit, onMiss func())
	// DecodeCacheStats returns cumulative hits and misses.
	DecodeCacheStats() (hits, misses uint64)
}

// IncrementalDecoder is the optional Strategy capability behind
// Config.IncrementalDecode: schemes that can repair the previous chosen
// set against a mask delta expose the path through it. See
// isgc.Scheme.EnableIncrementalDecode for the repair and fallback rules.
type IncrementalDecoder interface {
	// EnableIncrementalDecode turns on incremental repair.
	EnableIncrementalDecode()
	// SetIncrementalHooks registers repair/fallback callbacks (either may
	// be nil).
	SetIncrementalHooks(onRepair, onFallback func())
	// IncrementalDecodeCounts returns cumulative repairs, fallbacks, full
	// solves, and cache syncs.
	IncrementalDecodeCounts() (repairs, fallbacks, fullSolves, cacheSyncs uint64)
}

// computePar resolves the pool size: ComputePar wins when set, otherwise
// the legacy Parallel bool picks between GOMAXPROCS and sequential.
func (cfg *Config) computePar() int {
	if cfg.ComputePar != 0 {
		return cfg.ComputePar
	}
	if cfg.Parallel {
		return -1 // NewParallelGrad: auto = GOMAXPROCS
	}
	return 1
}

// Train runs distributed SGD under the configured scheme and returns the
// trace. The run is fully deterministic given Config.
func Train(cfg Config) (*Result, error) {
	if err := validate(&cfg); err != nil {
		return nil, err
	}
	st := cfg.Strategy
	n := st.N()
	cfg.Events.Info("engine.run_started", "in-process training started", events.NoStep, events.NoWorker,
		events.Fields{"scheme": st.Name(), "workers": n, "max_steps": cfg.MaxSteps})

	parts, err := cfg.Data.Partition(n)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	loaders := make([]*dataset.Loader, n)
	for d := range loaders {
		// The loader seed depends only on (run seed, partition): replicas
		// of a partition on different workers share batches.
		loaders[d], err = dataset.NewLoader(parts[d], cfg.BatchSize, cfg.Seed+int64(d)*7919)
		if err != nil {
			return nil, fmt.Errorf("engine: partition %d: %w", d, err)
		}
	}

	sim, err := simclock.New(simclock.Config{
		N:                   n,
		ComputePerPartition: cfg.ComputePerPartition,
		PartitionsPerWorker: st.C(),
		Upload:              cfg.Upload,
		Profile:             cfg.Profile,
		ComputeFactors:      cfg.ComputeFactors,
	})
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}

	params := cfg.Model.InitParams(cfg.Seed)
	var velocity []float64 // lazily allocated momentum buffer
	all := materialize(cfg.Data)
	res := &Result{}

	// One long-lived compute pool per run; partitions are its unit of
	// work, so any pool size yields bit-identical results.
	pool := model.NewParallelGrad(cfg.computePar())
	defer pool.Close()
	if cfg.Metrics != nil {
		cfg.Metrics.ComputeShards.Set(float64(pool.Par()))
	}
	if cfg.DecodeCache > 0 {
		if dc, ok := st.(DecodeCacher); ok {
			if cfg.Metrics != nil {
				dc.SetDecodeCacheHooks(cfg.Metrics.DecodeCacheHits.Inc, cfg.Metrics.DecodeCacheMisses.Inc)
			}
			dc.EnableDecodeCache(cfg.DecodeCache)
		}
	}
	if cfg.IncrementalDecode {
		if id, ok := st.(IncrementalDecoder); ok {
			if cfg.Metrics != nil {
				id.SetIncrementalHooks(cfg.Metrics.DecodeRepairs.Inc, cfg.Metrics.DecodeFallbacks.Inc)
			}
			id.EnableIncrementalDecode()
		}
	}
	// Per-partition gradient buffers, reused every step: after the first
	// step the gradient stage allocates nothing.
	gradBuf := make([][]float64, n)
	grads := make([][]float64, n)
	tasks := make([]func(), 0, n)

	classifier, isClassifier := cfg.Model.(model.Classifier)
	lastLoss := cfg.Model.Loss(params, all)
	lastAcc := 0.0
	if isClassifier {
		lastAcc = model.Accuracy(classifier, params, all)
	}
	rigid := st.WaitFor(1) == st.WaitFor(n) // Sync-SGD / classic GC

	// Checkpoint/restore: startStep > 0 means this run resumes a durable
	// snapshot; steps [0, startStep) already happened in a previous life
	// and res.Run covers [startStep, end) only.
	startStep := 0
	alreadyComplete := false
	saveCheckpoint := func(nextStep int, completed bool) error {
		cst := checkpoint.State{
			Version:         checkpoint.Version,
			Scheme:          st.Name(),
			N:               n,
			C:               st.C(),
			Seed:            cfg.Seed,
			W:               cfg.W,
			Step:            nextStep,
			Params:          checkpoint.Float64sToBytes(params),
			LastLoss:        lastLoss,
			LastAccuracy:    lastAcc,
			EventCursor:     cfg.Events.Total(),
			RecordCursor:    res.Run.Steps(),
			Completed:       completed,
			SavedAtUnixNano: time.Now().UnixNano(),
		}
		if velocity != nil {
			cst.Velocity = checkpoint.Float64sToBytes(velocity)
		}
		if rs, ok := st.(RandStateful); ok {
			cst.DecoderSeed, cst.DecoderDraws = rs.RandState()
		}
		if cfg.Profile != nil {
			cst.ProfileActive = true
			cst.ProfileSeed, cst.ProfileDraws = cfg.Profile.RandState()
		}
		_, err := cfg.Checkpoint.Save(nextStep, &cst)
		return err
	}
	if cfg.Restore && cfg.Checkpoint != nil {
		var cst checkpoint.State
		info, err := cfg.Checkpoint.Latest(&cst)
		switch {
		case errors.Is(err, checkpoint.ErrNoCheckpoint):
			// Fresh directory: cold start.
		case err != nil:
			return nil, fmt.Errorf("engine: restore: %w", err)
		default:
			if cst.Scheme != st.Name() || cst.N != n || cst.Seed != cfg.Seed {
				return nil, fmt.Errorf("engine: checkpoint %s is for scheme=%q n=%d seed=%d, config says scheme=%q n=%d seed=%d",
					info.File, cst.Scheme, cst.N, cst.Seed, st.Name(), n, cfg.Seed)
			}
			params = checkpoint.BytesToFloat64s(cst.Params)
			if len(cst.Velocity) > 0 {
				velocity = checkpoint.BytesToFloat64s(cst.Velocity)
			}
			startStep = cst.Step
			lastLoss = cst.LastLoss
			lastAcc = cst.LastAccuracy
			if rs, ok := st.(RandStateful); ok {
				rs.RestoreRandState(cst.DecoderSeed, cst.DecoderDraws)
			}
			if cst.ProfileActive && cfg.Profile != nil {
				cfg.Profile.RestoreRandState(cst.ProfileSeed, cst.ProfileDraws)
			}
			if cst.Completed {
				startStep = cfg.MaxSteps // nothing left to replay
				alreadyComplete = true
				res.Converged = cst.Step < cfg.MaxSteps
				if res.Converged {
					res.StepsToThreshold = cst.Step
				}
			}
			cfg.Events.Info("engine.restored", "resumed from checkpoint", cst.Step, events.NoWorker,
				events.Fields{"file": info.File, "completed": cst.Completed})
		}
	}

	// Bounded-staleness simulation state (Config.Staleness): lateQ holds
	// the stragglers' in-flight uploads with the simulated time left until
	// they land, open the recent steps they may still fold into, busy the
	// workers mid-upload (they rejoin the fleet once their upload lands or
	// is abandoned).
	type lateUpload struct {
		step      int
		worker    int
		remaining time.Duration
		coded     []float64
		lr        float64
	}
	type openStep struct {
		step int
		mask *bitset.Set // partitions already counted in the step's update
		g    []float64   // running decoded sum G
		r    int         // running recovered-partition count
	}
	var lateQ []*lateUpload
	var open []*openStep
	var busy []bool
	var maskedTimes []time.Duration
	if cfg.Staleness > 0 {
		busy = make([]bool, n)
		maskedTimes = make([]time.Duration, n)
	}
	// foldLate retroactively includes one landed upload in its own step's
	// normalized update: params −= η_t·((G+g)/(r+c) − G/r), the exact
	// difference between that step's mean-gradient update with and without
	// the straggler. A worker whose partitions were already counted (a
	// replica beat it) cannot fold and is dropped.
	foldLate := func(lu *lateUpload) bool {
		var p *openStep
		for _, q := range open {
			if q.step == lu.step {
				p = q
				break
			}
		}
		if p == nil || len(lu.coded) != len(params) {
			return false
		}
		wparts := st.Partitions(lu.worker)
		for _, d := range wparts {
			if p.mask.Contains(d) {
				return false
			}
		}
		rOld, rNew := float64(p.r), float64(p.r+len(wparts))
		for j, g := range lu.coded {
			ng := p.g[j] + g
			old := 0.0
			if p.r > 0 {
				old = p.g[j] / rOld
			}
			params[j] -= lu.lr * (ng/rNew - old)
			p.g[j] = ng
		}
		p.r += len(wparts)
		for _, d := range wparts {
			p.mask.Add(d)
		}
		return true
	}

	for step := startStep; step < cfg.MaxSteps; step++ {
		var wallStart time.Time
		if cfg.Metrics != nil {
			wallStart = time.Now()
		}
		// 1. Straggler simulation: who is available, and how long the
		// master waited — fastest-w by default, optionally per-step
		// adaptive w or a fixed deadline (Sec. IV policies).
		times := sim.Step()
		var avail *bitset.Set
		var elapsed time.Duration
		var err error
		switch {
		case cfg.Staleness > 0:
			// Pipelined bounded-staleness gather: wait for Staleness fewer
			// workers, among those not still uploading an earlier step.
			w := cfg.W
			if cfg.WSchedule != nil {
				w = cfg.WSchedule(step)
			}
			target := st.WaitFor(w) - cfg.Staleness
			if target < 1 {
				target = 1
			}
			eligible := 0
			copy(maskedTimes, times)
			for i, b := range busy {
				if b {
					maskedTimes[i] = time.Duration(1) << 62 // never the fastest
				} else {
					eligible++
				}
			}
			if target > eligible {
				target = eligible
			}
			avail, elapsed, err = simclock.FastestW(maskedTimes, target)
		case cfg.Deadline > 0 && !rigid:
			avail, elapsed = simclock.Deadline(times, cfg.Deadline)
			if avail.Empty() {
				avail, elapsed, err = simclock.FastestW(times, 1)
			}
		case cfg.WSchedule != nil:
			avail, elapsed, err = simclock.FastestW(times, st.WaitFor(cfg.WSchedule(step)))
		default:
			avail, elapsed, err = simclock.FastestW(times, st.WaitFor(cfg.W))
		}
		if err != nil {
			return nil, fmt.Errorf("engine: step %d: %w", step, err)
		}
		if cfg.Attribution != nil {
			// The simulated clock decomposes exactly: arrival is the
			// worker's total finish time, compute is its share before
			// upload and injected delay.
			for i := 0; i < n; i++ {
				if busy != nil && busy[i] {
					continue // mid-upload from an earlier step; no arrival here
				}
				compute := time.Duration(st.C()) * cfg.ComputePerPartition
				if cfg.ComputeFactors != nil {
					compute = time.Duration(float64(compute) * cfg.ComputeFactors[i])
				}
				sample := trace.ArrivalSample{Worker: i, Step: step, Compute: compute, Arrival: times[i]}
				if avail.Contains(i) {
					cfg.Attribution.ObserveAccepted(sample)
				} else {
					cfg.Attribution.ObserveIgnored(sample)
				}
			}
		}

		// 2. Per-partition mean gradients for this step's batches. Thanks
		// to the controlled seeds, a partition's gradient is identical on
		// every worker replicating it, so we compute each once — each
		// needed partition into its own reusable buffer, on the pool.
		// Partition granularity keeps any pool size bit-identical to the
		// sequential path.
		// Under staleness every eligible worker computes and encodes this
		// step — the stragglers' uploads stay in flight and may fold into a
		// later step, so their coded vectors are needed too.
		uploaders := avail
		if cfg.Staleness > 0 {
			up := bitset.New(n)
			for i, b := range busy {
				if !b {
					up.Add(i)
				}
			}
			uploaders = up
		}
		for d := range grads {
			grads[d] = nil
		}
		tasks = tasks[:0]
		uploaders.Range(func(i int) bool {
			for _, d := range st.Partitions(i) {
				if grads[d] != nil {
					continue
				}
				if gradBuf[d] == nil {
					gradBuf[d] = make([]float64, cfg.Model.Dim())
				}
				grads[d] = gradBuf[d]
				d := d
				tasks = append(tasks, func() {
					cfg.Model.GradInto(gradBuf[d], params, loaders[d].Samples(step))
				})
			}
			return true
		})
		pool.Run(tasks...)

		// 3. Worker-side encoding for available workers.
		coded := make([][]float64, n)
		var encodeErr error
		uploaders.Range(func(i int) bool {
			coded[i], encodeErr = st.Encode(i, grads)
			return encodeErr == nil
		})
		if encodeErr != nil {
			return nil, fmt.Errorf("engine: step %d: %w", step, encodeErr)
		}

		// 3b. Land the in-flight uploads whose remaining time ran out during
		// this step's gather window and abandon those that aged out of the
		// staleness window. Folds mutate params alongside this step's
		// update, mirroring the cluster master where late arrivals land
		// mid-gather; either worker rejoins the eligible fleet next step.
		folded := 0
		if cfg.Staleness > 0 {
			kept := lateQ[:0]
			for _, lu := range lateQ {
				lu.remaining -= elapsed
				if lu.remaining > 0 && step-lu.step < cfg.Staleness {
					kept = append(kept, lu)
					continue
				}
				busy[lu.worker] = false
				if lu.remaining <= 0 && foldLate(lu) {
					folded++
					if cfg.Attribution != nil {
						cfg.Attribution.ObserveAccepted(trace.ArrivalSample{Worker: lu.worker, Step: lu.step})
					}
				}
			}
			lateQ = kept
		}

		// 4. Master-side recovery and parameter update, normalized by the
		// recovered-partition count for an unbiased mean-gradient
		// estimate (Assumption 2).
		ghat, recParts, err := st.Recover(avail, coded)
		if err != nil {
			return nil, fmt.Errorf("engine: step %d: %w", step, err)
		}
		recovered := len(recParts)
		if recovered > 0 {
			lr := cfg.LearningRate
			if cfg.LRSchedule != nil {
				factor := cfg.LRSchedule(step)
				if factor <= 0 {
					return nil, fmt.Errorf("engine: LRSchedule(%d) = %v, need > 0", step, factor)
				}
				lr *= factor
			}
			// ĝ_mean is the unbiased mean-gradient estimate.
			inv := 1 / float64(recovered)
			if cfg.Momentum > 0 || cfg.WeightDecay > 0 {
				if velocity == nil {
					velocity = make([]float64, len(params))
				}
				for j := range velocity {
					g := ghat[j] * inv
					if cfg.WeightDecay > 0 {
						g += cfg.WeightDecay * params[j]
					}
					velocity[j] = cfg.Momentum*velocity[j] + g
					params[j] -= lr * velocity[j]
				}
			} else {
				linalg.AXPY(params, -lr*inv, ghat)
			}
		}

		// 4b. Open this step for late folds and enqueue the remaining upload
		// time of the stragglers this gather did not wait for.
		if cfg.Staleness > 0 {
			stepLR := cfg.LearningRate
			if cfg.LRSchedule != nil {
				factor := cfg.LRSchedule(step)
				if factor <= 0 {
					return nil, fmt.Errorf("engine: LRSchedule(%d) = %v, need > 0", step, factor)
				}
				stepLR *= factor
			}
			g := ghat
			if g == nil {
				g = make([]float64, len(params))
			}
			mask := bitset.New(n)
			for _, d := range recParts {
				mask.Add(d)
			}
			keep := open[:0]
			for _, p := range open {
				if p.step > step-cfg.Staleness {
					keep = append(keep, p)
				}
			}
			open = append(keep, &openStep{step: step, mask: mask, g: g, r: recovered})
			uploaders.Range(func(i int) bool {
				if !avail.Contains(i) {
					busy[i] = true
					lateQ = append(lateQ, &lateUpload{
						step: step, worker: i, remaining: times[i] - elapsed,
						coded: append([]float64(nil), coded[i]...), lr: stepLR,
					})
				}
				return true
			})
		}

		// 5. Bookkeeping.
		if cfg.EvalEvery <= 1 || (step+1)%cfg.EvalEvery == 0 || step == cfg.MaxSteps-1 {
			lastLoss = cfg.Model.Loss(params, all)
			if isClassifier {
				lastAcc = model.Accuracy(classifier, params, all)
			}
		}
		if cfg.Metrics != nil {
			cfg.Metrics.observeStep(time.Since(wallStart), recovered/st.C(),
				recovered, float64(recovered)/float64(n))
		}
		cfg.Events.Debug("engine.step_completed", "simulated step finished", step, events.NoWorker,
			events.Fields{"available": avail.Len(), "recovered": recovered,
				"loss": lastLoss, "elapsed": elapsed.String()})
		res.Run.Append(trace.StepRecord{
			Step:              step,
			Available:         avail.Len(),
			Chosen:            recovered / st.C(),
			RecoveredFraction: float64(recovered) / float64(n),
			Partitions:        recParts,
			Folded:            folded,
			Loss:              lastLoss,
			Accuracy:          lastAcc,
			Elapsed:           elapsed,
		})
		if cfg.LossThreshold > 0 && lastLoss <= cfg.LossThreshold {
			res.Converged = true
			res.StepsToThreshold = step + 1
			break
		}
		if cfg.Interrupt != nil && cfg.Interrupt(step) {
			res.Interrupted = true
			if cfg.Checkpoint != nil {
				if err := saveCheckpoint(step+1, false); err != nil {
					return nil, fmt.Errorf("engine: interrupt checkpoint: %w", err)
				}
			}
			cfg.Events.Info("engine.interrupted", "run stopped at step boundary", step, events.NoWorker, nil)
			break
		}
		if cfg.Checkpoint != nil && cfg.CheckpointEvery > 0 && (step+1)%cfg.CheckpointEvery == 0 && step+1 < cfg.MaxSteps {
			if err := saveCheckpoint(step+1, false); err != nil {
				return nil, fmt.Errorf("engine: step %d: %w", step, err)
			}
			cfg.Events.Debug("engine.checkpoint_written", "periodic checkpoint saved", step, events.NoWorker, nil)
		}
	}
	if !res.Converged {
		res.StepsToThreshold = cfg.MaxSteps
	}
	res.Params = params
	if cfg.Checkpoint != nil && !alreadyComplete && !res.Interrupted {
		end := startStep + res.Run.Steps()
		if err := saveCheckpoint(end, true); err != nil {
			return nil, fmt.Errorf("engine: final checkpoint: %w", err)
		}
	}
	cfg.Events.Info("engine.run_finished", "in-process training finished", events.NoStep, events.NoWorker,
		events.Fields{"steps": res.Run.Steps(), "converged": res.Converged})
	return res, nil
}

func validate(cfg *Config) error {
	switch {
	case cfg.Strategy == nil:
		return fmt.Errorf("engine: nil strategy")
	case cfg.Model == nil:
		return fmt.Errorf("engine: nil model")
	case cfg.Data == nil:
		return fmt.Errorf("engine: nil dataset")
	case cfg.BatchSize <= 0:
		return fmt.Errorf("engine: need BatchSize > 0, got %d", cfg.BatchSize)
	case cfg.LearningRate <= 0:
		return fmt.Errorf("engine: need LearningRate > 0, got %v", cfg.LearningRate)
	case cfg.Momentum < 0 || cfg.Momentum >= 1:
		return fmt.Errorf("engine: need Momentum in [0, 1), got %v", cfg.Momentum)
	case cfg.WeightDecay < 0:
		return fmt.Errorf("engine: need WeightDecay ≥ 0, got %v", cfg.WeightDecay)
	case cfg.MaxSteps <= 0:
		return fmt.Errorf("engine: need MaxSteps > 0, got %d", cfg.MaxSteps)
	case cfg.ComputePar < 0:
		return fmt.Errorf("engine: need ComputePar ≥ 0, got %d", cfg.ComputePar)
	case cfg.DecodeCache < 0:
		return fmt.Errorf("engine: need DecodeCache ≥ 0, got %d", cfg.DecodeCache)
	case cfg.Staleness < 0:
		return fmt.Errorf("engine: need Staleness ≥ 0, got %d", cfg.Staleness)
	}
	if cfg.Staleness > 0 {
		if cfg.Strategy.WaitFor(1) == cfg.Strategy.WaitFor(cfg.Strategy.N()) {
			return fmt.Errorf("engine: Staleness requires a flexible scheme; %s is rigid", cfg.Strategy.Name())
		}
		if cfg.Momentum > 0 || cfg.WeightDecay > 0 {
			return fmt.Errorf("engine: Staleness requires Momentum == 0 and WeightDecay == 0 (folds compose additively on plain SGD)")
		}
		if cfg.Deadline > 0 {
			return fmt.Errorf("engine: Staleness and Deadline are mutually exclusive")
		}
	}
	return nil
}

func materialize(d *dataset.Dataset) []dataset.Sample {
	out := make([]dataset.Sample, d.Len())
	for i := range out {
		out[i] = d.At(i)
	}
	return out
}
