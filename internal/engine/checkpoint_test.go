package engine

import (
	"reflect"
	"testing"
	"time"

	"isgc/internal/checkpoint"
	"isgc/internal/dataset"
	"isgc/internal/model"
	"isgc/internal/placement"
	"isgc/internal/straggler"
)

func ckptConfig(t *testing.T) Config {
	t.Helper()
	p, err := placement.CR(8, 2)
	st := isgcStrategy(t, p, err, 42)
	return Config{
		Strategy:     st,
		Model:        model.SoftmaxRegression{Features: 6, Classes: 3},
		Data:         clusterData(t, 240),
		BatchSize:    8,
		LearningRate: 0.05,
		Momentum:     0.9,
		W:            5,
		MaxSteps:     30,
		Seed:         42,
		Profile:      straggler.NewProfile(8, straggler.Exponential{Mean: 5 * time.Millisecond}, 7),
	}
}

// TestTrainCheckpointResumeEquivalence is the engine-level crash-
// equivalence property: a run interrupted at a checkpoint boundary and
// resumed in a fresh process image produces step records and final params
// bit-identical to an uninterrupted run with the same seed — params,
// momentum velocity, decoder RNG, and straggler RNG all restored exactly.
func TestTrainCheckpointResumeEquivalence(t *testing.T) {
	// Uninterrupted reference run.
	ref, err := Train(ckptConfig(t))
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: the first life is stopped at the step-11 boundary
	// (12 steps done), leaving a resumable — not Completed — checkpoint.
	dir := t.TempDir()
	store1, err := checkpoint.NewStore(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg1 := ckptConfig(t)
	cfg1.Checkpoint = store1
	cfg1.CheckpointEvery = 4
	cfg1.Interrupt = func(step int) bool { return step >= 11 }
	first, err := Train(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Interrupted || first.Run.Steps() != 12 {
		t.Fatalf("first life: interrupted=%v steps=%d, want true/12", first.Interrupted, first.Run.Steps())
	}

	// Second life: fresh strategy/profile objects, restore, run to the end.
	store2, err := checkpoint.NewStore(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := ckptConfig(t)
	cfg2.Checkpoint = store2
	cfg2.Restore = true
	res, err := Train(cfg2)
	if err != nil {
		t.Fatal(err)
	}

	if got, want := res.Run.Steps(), ref.Run.Steps()-12; got != want {
		t.Fatalf("resumed run recorded %d steps, want %d", got, want)
	}
	for i, rec := range res.Run.Records {
		if !reflect.DeepEqual(rec, ref.Run.Records[12+i]) {
			t.Fatalf("record %d diverged:\nresumed %+v\n    ref %+v", rec.Step, rec, ref.Run.Records[12+i])
		}
	}
	if !reflect.DeepEqual(res.Params, ref.Params) {
		t.Fatal("final params are not bit-identical after resume")
	}
}

// TestTrainRestoreRejectsMismatchedConfig pins the fingerprint check: a
// checkpoint from one (scheme, seed) must not silently seed a different
// run.
func TestTrainRestoreRejectsMismatchedConfig(t *testing.T) {
	dir := t.TempDir()
	store, err := checkpoint.NewStore(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ckptConfig(t)
	cfg.MaxSteps = 4
	cfg.Checkpoint = store
	if _, err := Train(cfg); err != nil {
		t.Fatal(err)
	}

	bad := ckptConfig(t)
	bad.Seed = 999 // different init/batches — restore must refuse
	bad.Checkpoint = store
	bad.Restore = true
	if _, err := Train(bad); err == nil {
		t.Fatal("restore accepted a checkpoint with a mismatched seed")
	}
}

// TestTrainRestoreCompletedRun asserts a final (Completed) checkpoint
// short-circuits: no steps replay, params come straight from the snapshot.
func TestTrainRestoreCompletedRun(t *testing.T) {
	dir := t.TempDir()
	store, err := checkpoint.NewStore(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ckptConfig(t)
	cfg.MaxSteps = 6
	cfg.Checkpoint = store
	ref, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}

	again := ckptConfig(t)
	again.MaxSteps = 6
	again.Checkpoint = store
	again.Restore = true
	res, err := Train(again)
	if err != nil {
		t.Fatal(err)
	}
	if res.Run.Steps() != 0 {
		t.Fatalf("completed run replayed %d steps", res.Run.Steps())
	}
	if !reflect.DeepEqual(res.Params, ref.Params) {
		t.Fatal("params from completed checkpoint differ from the original run")
	}
}

// TestLoaderSameBatchAfterRestore is the dataset-path half of the rand-
// state satellite: batch selection depends only on (seed, step), so a
// loader rebuilt after restore serves the exact batch the pre-crash loader
// would have served next.
func TestLoaderSameBatchAfterRestore(t *testing.T) {
	data := clusterData(t, 128)
	l1, err := dataset.NewLoader(data, 16, 42)
	if err != nil {
		t.Fatal(err)
	}
	// Consume some steps, as the pre-crash process would.
	for step := 0; step < 10; step++ {
		l1.Samples(step)
	}
	// "Restore": a brand-new loader with the same seed.
	l2, err := dataset.NewLoader(data, 16, 42)
	if err != nil {
		t.Fatal(err)
	}
	for step := 10; step < 20; step++ {
		a, b := l1.Samples(step), l2.Samples(step)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("step %d: restored loader served a different batch", step)
		}
	}
}
