package engine

import (
	"math"
	"strings"
	"testing"
	"time"

	"isgc/internal/bitset"
	"isgc/internal/dataset"
	"isgc/internal/gc"
	"isgc/internal/isgc"
	"isgc/internal/model"
	"isgc/internal/placement"
	"isgc/internal/straggler"
)

func clusterData(t *testing.T, m int) *dataset.Dataset {
	t.Helper()
	d, err := dataset.SyntheticClusters(m, 6, 3, 4.0, 101)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func isgcStrategy(t *testing.T, p *placement.Placement, perr error, seed int64) Strategy {
	t.Helper()
	if perr != nil {
		t.Fatal(perr)
	}
	st, err := NewISGC(isgc.New(p, seed))
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func baseConfig(t *testing.T, st Strategy) Config {
	t.Helper()
	return Config{
		Strategy:     st,
		Model:        model.SoftmaxRegression{Features: 6, Classes: 3},
		Data:         clusterData(t, 240),
		BatchSize:    16,
		LearningRate: 0.3,
		W:            st.N(),
		MaxSteps:     60,
		Seed:         42,
	}
}

func TestValidation(t *testing.T) {
	st, err := NewSyncSGD(4)
	if err != nil {
		t.Fatal(err)
	}
	good := baseConfig(t, st)
	mutations := []func(*Config){
		func(c *Config) { c.Strategy = nil },
		func(c *Config) { c.Model = nil },
		func(c *Config) { c.Data = nil },
		func(c *Config) { c.BatchSize = 0 },
		func(c *Config) { c.LearningRate = 0 },
		func(c *Config) { c.MaxSteps = 0 },
	}
	for i, mut := range mutations {
		bad := good
		mut(&bad)
		if _, err := Train(bad); err == nil {
			t.Errorf("mutation %d: expected error", i)
		}
	}
}

func TestIndivisibleDataRejected(t *testing.T) {
	st, err := NewSyncSGD(7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(t, st) // 240 % 7 != 0
	if _, err := Train(cfg); err == nil {
		t.Fatal("expected partitioning error")
	}
}

func TestSyncSGDTrainsToLowLoss(t *testing.T) {
	st, err := NewSyncSGD(4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(t, st)
	cfg.MaxSteps = 120
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Run.Steps() != 120 {
		t.Fatalf("steps = %d", res.Run.Steps())
	}
	first := res.Run.Records[0].Loss
	last := res.Run.FinalLoss()
	if !(last < 0.5*first) {
		t.Fatalf("loss %v → %v, expected meaningful decrease", first, last)
	}
	// Sync-SGD always recovers everything.
	for _, rec := range res.Run.Records {
		if rec.RecoveredFraction != 1.0 {
			t.Fatalf("sync recovered %v at step %d", rec.RecoveredFraction, rec.Step)
		}
		if rec.Available != 4 {
			t.Fatalf("sync available %d", rec.Available)
		}
	}
}

func TestLossThresholdStopsEarly(t *testing.T) {
	st, err := NewSyncSGD(4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(t, st)
	cfg.MaxSteps = 500
	cfg.LossThreshold = 0.4
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("expected convergence")
	}
	if res.StepsToThreshold != res.Run.Steps() {
		t.Fatalf("StepsToThreshold %d ≠ recorded steps %d", res.StepsToThreshold, res.Run.Steps())
	}
	if res.Run.FinalLoss() > 0.4 {
		t.Fatalf("final loss %v above threshold", res.Run.FinalLoss())
	}
	if res.Run.Steps() >= 500 {
		t.Fatal("did not stop early")
	}
}

func TestISGCRecoversUnderStragglers(t *testing.T) {
	p, perr := placement.CR(4, 2)
	st := isgcStrategy(t, p, perr, 9)
	cfg := baseConfig(t, st)
	cfg.W = 2
	cfg.Profile = straggler.NewProfile(4, straggler.Exponential{Mean: time.Second}, 5)
	cfg.ComputePerPartition = 10 * time.Millisecond
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range res.Run.Records {
		if rec.Available != 2 {
			t.Fatalf("available %d, want 2", rec.Available)
		}
		// With CR(4,2) and w=2, recovery is 0.5 (adjacent pair) or 1.0
		// (opposite pair).
		if rec.RecoveredFraction != 0.5 && rec.RecoveredFraction != 1.0 {
			t.Fatalf("recovered %v, want 0.5 or 1.0", rec.RecoveredFraction)
		}
		if rec.Elapsed <= 0 {
			t.Fatal("elapsed must be positive with nonzero compute time")
		}
	}
}

// IS-GC must recover at least as much as IS-SGD at every w — the paper's
// headline comparison (Fig. 12(a)).
func TestISGCRecoversMoreThanISSGD(t *testing.T) {
	for w := 1; w <= 4; w++ {
		pfr, perr := placement.FR(4, 2)
		stFR := isgcStrategy(t, pfr, perr, 3)
		stIS, err := NewISSGD(4)
		if err != nil {
			t.Fatal(err)
		}
		var fr, is float64
		for _, pair := range []struct {
			st  Strategy
			dst *float64
		}{{stFR, &fr}, {stIS, &is}} {
			cfg := baseConfig(t, pair.st)
			cfg.W = w
			cfg.Profile = straggler.NewProfile(4, straggler.Exponential{Mean: time.Second}, 77)
			cfg.MaxSteps = 40
			res, err := Train(cfg)
			if err != nil {
				t.Fatal(err)
			}
			*pair.dst = res.Run.MeanRecovered()
		}
		if fr < is-1e-9 {
			t.Fatalf("w=%d: IS-GC-FR recovered %v < IS-SGD %v", w, fr, is)
		}
		wantIS := float64(w) / 4
		if math.Abs(is-wantIS) > 1e-9 {
			t.Fatalf("w=%d: IS-SGD recovered %v, want %v", w, is, wantIS)
		}
	}
}

// At w = n-c+1 IS-GC recovers fully, matching classic GC (Fig. 12(a) at w=3).
func TestISGCFullRecoveryAtGCThreshold(t *testing.T) {
	p, perr := placement.CR(4, 2)
	st := isgcStrategy(t, p, perr, 4)
	cfg := baseConfig(t, st)
	cfg.W = 3
	cfg.Profile = straggler.NewProfile(4, straggler.Exponential{Mean: 500 * time.Millisecond}, 6)
	cfg.MaxSteps = 30
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Run.MeanRecovered(); got != 1.0 {
		t.Fatalf("mean recovered %v, want 1.0", got)
	}
}

func TestClassicGCWaitsForExactlyMinWorkers(t *testing.T) {
	code, err := gc.NewCR(4, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewClassicGC(code)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(t, st)
	cfg.W = 1 // must be ignored: GC needs n-c+1 = 3
	cfg.Profile = straggler.NewProfile(4, straggler.Exponential{Mean: time.Second}, 8)
	cfg.MaxSteps = 25
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range res.Run.Records {
		if rec.Available != 3 {
			t.Fatalf("GC waited for %d workers, want 3", rec.Available)
		}
		if rec.RecoveredFraction != 1.0 {
			t.Fatalf("GC recovered %v, want full", rec.RecoveredFraction)
		}
	}
}

// Identical seeds ⇒ identical trajectories: schemes that fully recover in
// every step (Sync-SGD and classic GC at w=n-c+1) must produce exactly the
// same parameter path, because ĝ/|D_d| is the same full mean gradient.
func TestFullRecoverySchemesShareTrajectory(t *testing.T) {
	stSync, err := NewSyncSGD(4)
	if err != nil {
		t.Fatal(err)
	}
	code, err := gc.NewCR(4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	stGC, err := NewClassicGC(code)
	if err != nil {
		t.Fatal(err)
	}
	pfr, perr := placement.FR(4, 2)
	stFR := isgcStrategy(t, pfr, perr, 2)

	var params [][]float64
	for _, st := range []Strategy{stSync, stGC, stFR} {
		cfg := baseConfig(t, st)
		cfg.W = st.N() // full availability; FR IS-GC also fully recovers
		cfg.MaxSteps = 30
		res, err := Train(cfg)
		if err != nil {
			t.Fatal(err)
		}
		params = append(params, res.Params)
	}
	for i := 1; i < len(params); i++ {
		for j := range params[0] {
			if math.Abs(params[0][j]-params[i][j]) > 1e-8 {
				t.Fatalf("trajectory %d diverged at param %d: %v vs %v", i, j, params[0][j], params[i][j])
			}
		}
	}
}

func TestTrainDeterminism(t *testing.T) {
	run := func() *Result {
		p, perr := placement.CR(8, 2)
		st := isgcStrategy(t, p, perr, 5)
		d, err := dataset.SyntheticClusters(240, 6, 3, 4.0, 101)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			Strategy:     st,
			Model:        model.SoftmaxRegression{Features: 6, Classes: 3},
			Data:         d,
			BatchSize:    8,
			LearningRate: 0.2,
			W:            4,
			MaxSteps:     40,
			Seed:         9,
			Profile:      straggler.NewProfile(8, straggler.Exponential{Mean: time.Second}, 13),
		}
		res, err := Train(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Run.Steps() != b.Run.Steps() {
		t.Fatal("step counts differ")
	}
	for i := range a.Run.Records {
		ra, rb := a.Run.Records[i], b.Run.Records[i]
		if ra.Loss != rb.Loss || ra.RecoveredFraction != rb.RecoveredFraction || ra.Elapsed != rb.Elapsed {
			t.Fatalf("step %d records differ: %+v vs %+v", i, ra, rb)
		}
	}
}

func TestEvalEverySkipsEvaluations(t *testing.T) {
	st, err := NewSyncSGD(4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(t, st)
	cfg.MaxSteps = 20
	cfg.EvalEvery = 5
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Within an eval window the recorded loss is constant.
	if res.Run.Records[0].Loss != res.Run.Records[3].Loss {
		t.Fatal("losses within an eval window must repeat the stale value")
	}
	if res.Run.Records[4].Loss == res.Run.Records[3].Loss {
		t.Fatal("loss must refresh at the eval boundary")
	}
}

func TestStrategyAccessors(t *testing.T) {
	stSync, _ := NewSyncSGD(4)
	stIS, _ := NewISSGD(4)
	code, err := gc.NewFR(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	stGC, _ := NewClassicGC(code)
	pcr, perr := placement.CR(4, 2)
	stCR := isgcStrategy(t, pcr, perr, 1)
	phr, perr2 := placement.HR(8, 2, 2, 2)
	stHR := isgcStrategy(t, phr, perr2, 1)

	cases := []struct {
		st         Strategy
		name       string
		c          int
		waitForOne int
	}{
		{stSync, "Sync-SGD", 1, 4},
		{stIS, "IS-SGD", 1, 1},
		{stGC, "GC-FR", 2, 3},
		{stCR, "IS-GC-CR", 2, 1},
		{stHR, "IS-GC-HR(c1=2,c2=2)", 4, 1},
	}
	for _, tc := range cases {
		if tc.st.Name() != tc.name {
			t.Errorf("Name = %q, want %q", tc.st.Name(), tc.name)
		}
		if tc.st.C() != tc.c {
			t.Errorf("%s: C = %d, want %d", tc.name, tc.st.C(), tc.c)
		}
		if got := tc.st.WaitFor(1); got != tc.waitForOne {
			t.Errorf("%s: WaitFor(1) = %d, want %d", tc.name, got, tc.waitForOne)
		}
		if tc.st.WaitFor(99) > tc.st.N() {
			t.Errorf("%s: WaitFor must clamp to n", tc.name)
		}
		if len(tc.st.Partitions(0)) != tc.c {
			t.Errorf("%s: Partitions(0) wrong length", tc.name)
		}
	}
	if !strings.HasPrefix(stHR.Name(), "IS-GC-HR") {
		t.Error("HR name prefix")
	}
}

func TestConstructorNilChecks(t *testing.T) {
	if _, err := NewSyncSGD(0); err == nil {
		t.Error("NewSyncSGD(0) must fail")
	}
	if _, err := NewISSGD(-1); err == nil {
		t.Error("NewISSGD(-1) must fail")
	}
	if _, err := NewClassicGC(nil); err == nil {
		t.Error("NewClassicGC(nil) must fail")
	}
	if _, err := NewISGC(nil); err == nil {
		t.Error("NewISGC(nil) must fail")
	}
}

func TestRecoverErrorsOnMissingGradients(t *testing.T) {
	stSync, _ := NewSyncSGD(2)
	full := bitset.FromSlice([]int{0, 1})
	if _, _, err := stSync.Recover(full, make([][]float64, 2)); err == nil {
		t.Error("Sync-SGD must error on nil gradients")
	}
	if _, _, err := stSync.Recover(bitset.FromSlice([]int{0}), make([][]float64, 2)); err == nil {
		t.Error("Sync-SGD must error on partial availability")
	}
	stIS, _ := NewISSGD(2)
	if _, _, err := stIS.Recover(bitset.FromSlice([]int{1}), make([][]float64, 2)); err == nil {
		t.Error("IS-SGD must error on nil gradient of available worker")
	}
}
