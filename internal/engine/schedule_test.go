package engine

import (
	"testing"
)

func TestRampSchedule(t *testing.T) {
	s := RampSchedule(1, 4, 10)
	if s(0) != 1 {
		t.Fatalf("s(0) = %d", s(0))
	}
	if s(9) != 4 {
		t.Fatalf("s(9) = %d", s(9))
	}
	if s(-5) != 1 || s(100) != 4 {
		t.Fatal("out-of-range steps must clamp")
	}
	prev := 0
	for step := 0; step < 10; step++ {
		v := s(step)
		if v < prev {
			t.Fatalf("ramp not monotone at step %d", step)
		}
		prev = v
	}
	// Decreasing ramp.
	d := RampSchedule(4, 1, 4)
	if d(0) != 4 || d(3) != 1 {
		t.Fatalf("decreasing ramp wrong: %d..%d", d(0), d(3))
	}
	// Degenerate.
	one := RampSchedule(2, 7, 1)
	if one(0) != 7 {
		t.Fatal("single-step ramp must return `to`")
	}
}

func TestPhaseSchedule(t *testing.T) {
	s := PhaseSchedule([]int{1, 2, 4}, []int{5, 12})
	cases := []struct{ step, want int }{
		{0, 1}, {4, 1}, {5, 2}, {11, 2}, {12, 4}, {100, 4},
	}
	for _, tc := range cases {
		if got := s(tc.step); got != tc.want {
			t.Errorf("s(%d) = %d, want %d", tc.step, got, tc.want)
		}
	}
}

func TestPhaseScheduleValidation(t *testing.T) {
	assertPanics := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	assertPanics("length mismatch", func() { PhaseSchedule([]int{1, 2}, []int{3, 4}) })
	assertPanics("non-increasing boundaries", func() { PhaseSchedule([]int{1, 2, 3}, []int{5, 5}) })
}

func TestPhaseScheduleCopiesInputs(t *testing.T) {
	ws := []int{1, 3}
	bounds := []int{5}
	s := PhaseSchedule(ws, bounds)
	ws[0] = 99
	bounds[0] = 0
	if s(0) != 1 || s(4) != 1 || s(5) != 3 {
		t.Fatal("PhaseSchedule must copy its inputs")
	}
}

func TestLossAwareSchedule(t *testing.T) {
	losses := []float64{2.0, 1.5, 0.9, 1.2, 0.5}
	s := LossAwareSchedule(1, 4, 1.0, func(step int) float64 { return losses[step] })
	want := []int{1, 1, 4, 4, 4} // triggers at step 2, stays high
	for step, w := range want {
		if got := s(step); got != w {
			t.Errorf("s(%d) = %d, want %d", step, got, w)
		}
	}
}

// The schedules plug into Train: a ramp must produce the expected
// availability sequence end to end.
func TestRampScheduleInTraining(t *testing.T) {
	st, err := NewISSGD(4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(t, st)
	cfg.MaxSteps = 10
	cfg.WSchedule = RampSchedule(1, 4, 10)
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Run.Records[0].Available != 1 {
		t.Fatalf("step 0 available %d", res.Run.Records[0].Available)
	}
	if res.Run.Records[9].Available != 4 {
		t.Fatalf("step 9 available %d", res.Run.Records[9].Available)
	}
}
