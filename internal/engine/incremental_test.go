package engine

import (
	"testing"

	"isgc/internal/dataset"
	"isgc/internal/model"
	"isgc/internal/placement"
)

// runWithIncremental trains the fixed MLP/CR(8,3) workload from
// compute_test.go with the incremental decode path toggled.
func runWithIncremental(t *testing.T, incremental bool) *Result {
	t.Helper()
	d, err := dataset.SyntheticClusters(240, 6, 3, 1.5, 41)
	if err != nil {
		t.Fatal(err)
	}
	p, err := placement.CR(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	st := isgcStrategy(t, p, nil, 11)
	res, err := Train(Config{
		Strategy:          st,
		Model:             model.MLP{Features: 6, Hidden: 8, Classes: 3},
		Data:              d,
		BatchSize:         8,
		LearningRate:      0.1,
		W:                 5,
		MaxSteps:          30,
		Seed:              11,
		IncrementalDecode: incremental,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestIncrementalDecodeInEngine: with the repair path on, every step must
// still choose a maximum set — |I|, recovered fraction, and availability
// match the from-scratch run step for step (every maximum independent set
// has the same size, so recovery metrics are invariant).
func TestIncrementalDecodeInEngine(t *testing.T) {
	ref := runWithIncremental(t, false)
	inc := runWithIncremental(t, true)
	if len(ref.Run.Records) != len(inc.Run.Records) {
		t.Fatalf("step counts differ: %d vs %d", len(inc.Run.Records), len(ref.Run.Records))
	}
	for s, rr := range ref.Run.Records {
		ir := inc.Run.Records[s]
		if rr.Available != ir.Available || rr.Chosen != ir.Chosen ||
			rr.RecoveredFraction != ir.RecoveredFraction {
			t.Fatalf("step %d: incremental run avail=%d |I|=%d frac=%v, want avail=%d |I|=%d frac=%v",
				s, ir.Available, ir.Chosen, ir.RecoveredFraction,
				rr.Available, rr.Chosen, rr.RecoveredFraction)
		}
	}
}

// TestIncrementalDecodeStatsViaStrategy checks the IncrementalDecoder
// plumbing: the strategy exposes the scheme's counters, every step is
// accounted to exactly one of repair/full-solve, and an FR run (whose
// repairs are always exact) actually exercises the repair path.
func TestIncrementalDecodeStatsViaStrategy(t *testing.T) {
	d, err := dataset.SyntheticClusters(120, 4, 2, 1.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := placement.FR(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	st := isgcStrategy(t, p, nil, 5)
	const steps = 40
	res, err := Train(Config{
		Strategy:          st,
		Model:             model.LinearRegression{Features: 4},
		Data:              d,
		BatchSize:         8,
		LearningRate:      0.05,
		W:                 5,
		MaxSteps:          steps,
		Seed:              5,
		IncrementalDecode: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	id, ok := st.(IncrementalDecoder)
	if !ok {
		t.Fatal("isgc strategy does not implement IncrementalDecoder")
	}
	repairs, fallbacks, fullSolves, cacheSyncs := id.IncrementalDecodeCounts()
	decodes := repairs + fallbacks + fullSolves // fallback implies a full solve too
	if fallbacks != 0 {
		t.Fatalf("FR repairs are exact; got %d fallbacks", fallbacks)
	}
	if repairs == 0 {
		t.Fatalf("run never repaired (repairs=%d full=%d)", repairs, fullSolves)
	}
	if cacheSyncs != 0 {
		t.Fatalf("cache disabled but %d cache syncs recorded", cacheSyncs)
	}
	if got := int(decodes); got < len(res.Run.Records) {
		t.Fatalf("%d decode outcomes for %d steps", got, len(res.Run.Records))
	}
}
