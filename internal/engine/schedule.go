package engine

// W-schedule constructors for Config.WSchedule — the Sec. IV adaptive
// policies as reusable, tested building blocks.

// RampSchedule linearly ramps the wait count from `from` at step 0 to `to`
// at step totalSteps-1 (inclusive), clamping beyond. from > to gives a
// decreasing ramp. The paper's suggestion — "receive gradients from fewer
// workers at the beginning … and then from more workers afterwards" — is
// RampSchedule(1, n, maxSteps).
func RampSchedule(from, to, totalSteps int) func(step int) int {
	if totalSteps <= 1 {
		return func(int) int { return to }
	}
	return func(step int) int {
		if step <= 0 {
			return from
		}
		if step >= totalSteps-1 {
			return to
		}
		return from + (to-from)*step/(totalSteps-1)
	}
}

// PhaseSchedule switches the wait count at fixed step boundaries:
// boundaries[i] is the first step of phase i+1, ws[i] the wait count of
// phase i (len(ws) == len(boundaries)+1). Boundaries must be strictly
// increasing; the constructor panics otherwise, since schedules are
// build-time configuration.
func PhaseSchedule(ws []int, boundaries []int) func(step int) int {
	if len(ws) != len(boundaries)+1 {
		panic("engine: PhaseSchedule needs len(ws) == len(boundaries)+1")
	}
	for i := 1; i < len(boundaries); i++ {
		if boundaries[i] <= boundaries[i-1] {
			panic("engine: PhaseSchedule boundaries must be strictly increasing")
		}
	}
	wsCopy := append([]int(nil), ws...)
	bCopy := append([]int(nil), boundaries...)
	return func(step int) int {
		for i, b := range bCopy {
			if step < b {
				return wsCopy[i]
			}
		}
		return wsCopy[len(wsCopy)-1]
	}
}

// LossAwareSchedule returns a stateful schedule that starts at low and
// jumps to high once the provided loss probe reports a value at or below
// the trigger threshold — "fewer workers to save time, then more … until
// convergence" driven by actual progress rather than a step count. The
// probe is called once per step with the current step index and must
// return the latest recorded loss (e.g. closing over a shared variable
// the training loop updates). Once triggered, the schedule stays high.
func LossAwareSchedule(low, high int, trigger float64, probe func(step int) float64) func(step int) int {
	triggered := false
	return func(step int) int {
		if !triggered && probe(step) <= trigger {
			triggered = true
		}
		if triggered {
			return high
		}
		return low
	}
}
