package engine

import (
	"math"
	"testing"

	"isgc/internal/dataset"
	"isgc/internal/model"
)

func TestMomentumValidation(t *testing.T) {
	st, err := NewSyncSGD(4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(t, st)
	cfg.Momentum = 1.0
	if _, err := Train(cfg); err == nil {
		t.Error("Momentum = 1 must be rejected")
	}
	cfg.Momentum = -0.1
	if _, err := Train(cfg); err == nil {
		t.Error("negative Momentum must be rejected")
	}
	cfg.Momentum = 0
	cfg.WeightDecay = -1
	if _, err := Train(cfg); err == nil {
		t.Error("negative WeightDecay must be rejected")
	}
}

// On a smooth convex task, heavy-ball momentum with a reduced step size
// reaches a lower loss than plain SGD in the same number of steps.
func TestMomentumAccelerates(t *testing.T) {
	d, _, err := dataset.SyntheticLinear(240, 8, 0.05, 21)
	if err != nil {
		t.Fatal(err)
	}
	run := func(momentum float64, lr float64) float64 {
		st, err := NewSyncSGD(4)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Train(Config{
			Strategy:     st,
			Model:        model.LinearRegression{Features: 8},
			Data:         d,
			BatchSize:    8,
			LearningRate: lr,
			Momentum:     momentum,
			W:            4,
			MaxSteps:     60,
			Seed:         3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Run.FinalLoss()
	}
	plain := run(0, 0.05)
	heavy := run(0.9, 0.02)
	if !(heavy < plain) {
		t.Fatalf("momentum loss %v not < plain %v", heavy, plain)
	}
}

// Weight decay shrinks the parameter norm relative to an unregularized run.
func TestWeightDecayShrinksParams(t *testing.T) {
	d, _, err := dataset.SyntheticLinear(240, 8, 0.05, 22)
	if err != nil {
		t.Fatal(err)
	}
	run := func(wd float64) float64 {
		st, err := NewSyncSGD(4)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Train(Config{
			Strategy:     st,
			Model:        model.LinearRegression{Features: 8},
			Data:         d,
			BatchSize:    8,
			LearningRate: 0.05,
			WeightDecay:  wd,
			W:            4,
			MaxSteps:     150,
			Seed:         3,
		})
		if err != nil {
			t.Fatal(err)
		}
		norm := 0.0
		for _, v := range res.Params {
			norm += v * v
		}
		return math.Sqrt(norm)
	}
	free := run(0)
	decayed := run(0.5)
	if !(decayed < free) {
		t.Fatalf("decayed norm %v not < free norm %v", decayed, free)
	}
}

// LRSchedule scales the step size per step; a zero factor must fail fast
// and a decaying schedule must still converge.
func TestLRSchedule(t *testing.T) {
	d, _, err := dataset.SyntheticLinear(240, 4, 0.05, 24)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewSyncSGD(4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Strategy: st, Model: model.LinearRegression{Features: 4}, Data: d,
		BatchSize: 8, LearningRate: 0.1, W: 4, MaxSteps: 100, Seed: 2,
		LRSchedule: func(step int) float64 { return 1 / (1 + 0.05*float64(step)) },
	}
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !(res.Run.FinalLoss() < res.Run.Records[0].Loss) {
		t.Fatalf("decayed LR run did not reduce loss: %v → %v", res.Run.Records[0].Loss, res.Run.FinalLoss())
	}

	bad := cfg
	bad.LRSchedule = func(int) float64 { return 0 }
	if _, err := Train(bad); err == nil {
		t.Fatal("zero LR factor must error")
	}
}

// Momentum path must be identical between two runs with the same seed
// (the velocity buffer must not introduce nondeterminism).
func TestMomentumDeterministic(t *testing.T) {
	d, _, err := dataset.SyntheticLinear(240, 4, 0.05, 23)
	if err != nil {
		t.Fatal(err)
	}
	run := func() []float64 {
		st, err := NewSyncSGD(4)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Train(Config{
			Strategy: st, Model: model.LinearRegression{Features: 4}, Data: d,
			BatchSize: 8, LearningRate: 0.03, Momentum: 0.8, W: 4, MaxSteps: 40, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Params
	}
	a, b := run(), run()
	for j := range a {
		if a[j] != b[j] {
			t.Fatalf("param %d differs: %v vs %v", j, a[j], b[j])
		}
	}
}
