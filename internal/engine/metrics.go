package engine

import (
	"time"

	"isgc/internal/metrics"
)

// Metrics is the in-process engine's instrument set: step wall time,
// decoder behaviour (MIS size, recovered partitions), and the live
// recovered-fraction gauge — the same vocabulary the cluster master
// exports, so dashboards read identically for simulated and real runs.
// Nil disables instrumentation; the hot path pays one branch.
type Metrics struct {
	// StepTime is the real (not simulated) wall time of one training
	// step: gradient computation, encode, decode, and update.
	StepTime *metrics.Histogram
	// MISSize observes |I|, the decoded worker set size per step — for
	// IS-GC this is the maximal independent set the decoder picked.
	MISSize *metrics.Histogram
	// PartitionsRecovered accumulates recovered partitions across steps.
	PartitionsRecovered *metrics.Counter
	// RecoveredFraction is the last step's recovered partition fraction.
	RecoveredFraction *metrics.Gauge
	// Steps counts completed steps.
	Steps *metrics.Counter
	// ComputeShards is the size of the run's gradient compute pool.
	ComputeShards *metrics.Gauge
	// DecodeCacheHits and DecodeCacheMisses count decode memoization
	// outcomes (always zero unless Config.DecodeCache is enabled).
	DecodeCacheHits   *metrics.Counter
	DecodeCacheMisses *metrics.Counter
	// DecodeRepairs and DecodeFallbacks count incremental-decode outcomes
	// (always zero unless Config.IncrementalDecode is enabled).
	DecodeRepairs   *metrics.Counter
	DecodeFallbacks *metrics.Counter
}

// NewMetrics registers the engine's metric families on reg.
func NewMetrics(reg *metrics.Registry) *Metrics {
	return &Metrics{
		StepTime: reg.NewHistogram("isgc_engine_step_seconds",
			"Real wall time of one in-process training step.",
			metrics.ExponentialBuckets(1e-5, 4, 10)),
		MISSize: reg.NewHistogram("isgc_engine_decode_mis_size",
			"Decoded worker set size |I| per step.",
			metrics.ExponentialBuckets(1, 2, 10)),
		PartitionsRecovered: reg.NewCounter("isgc_engine_partitions_recovered_total",
			"Dataset partitions recovered across all steps."),
		RecoveredFraction: reg.NewGauge("isgc_engine_recovered_fraction",
			"Fraction of dataset partitions recovered in the last step."),
		Steps: reg.NewCounter("isgc_engine_steps_total",
			"Completed training steps."),
		ComputeShards: reg.NewGauge("isgc_engine_compute_shards",
			"Size of the gradient compute pool for the current run."),
		DecodeCacheHits: reg.NewCounter("isgc_engine_decode_cache_hits_total",
			"Decode results served from the availability-mask LRU."),
		DecodeCacheMisses: reg.NewCounter("isgc_engine_decode_cache_misses_total",
			"Decode results computed afresh and inserted into the LRU."),
		DecodeRepairs: reg.NewCounter("isgc_engine_decode_repairs_total",
			"Decode results served by incrementally repairing the previous chosen set."),
		DecodeFallbacks: reg.NewCounter("isgc_engine_decode_fallbacks_total",
			"Incremental repairs that could not be certified maximum and fell back to a fresh solve."),
	}
}

// observeStep records one step; safe on a nil receiver.
func (em *Metrics) observeStep(wall time.Duration, misSize, recovered int, frac float64) {
	if em == nil {
		return
	}
	em.StepTime.Observe(wall.Seconds())
	em.MISSize.Observe(float64(misSize))
	em.PartitionsRecovered.Add(uint64(recovered))
	em.RecoveredFraction.Set(frac)
	em.Steps.Inc()
}
