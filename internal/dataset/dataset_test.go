package dataset

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("expected error for empty sample list")
	}
	if _, err := New([]Sample{{X: nil, Y: 0}}); err == nil {
		t.Error("expected error for zero-dim features")
	}
	if _, err := New([]Sample{{X: []float64{1}}, {X: []float64{1, 2}}}); err == nil {
		t.Error("expected error for inconsistent dims")
	}
	d, err := New([]Sample{{X: []float64{1, 2}, Y: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 || d.Dim() != 2 || d.At(0).Y != 3 {
		t.Fatal("accessors wrong")
	}
}

func TestNewCopiesSlice(t *testing.T) {
	samples := []Sample{{X: []float64{1}, Y: 1}, {X: []float64{2}, Y: 2}}
	d, err := New(samples)
	if err != nil {
		t.Fatal(err)
	}
	samples[0] = Sample{X: []float64{9}, Y: 9}
	if d.At(0).Y == 9 {
		t.Fatal("New must copy the sample slice")
	}
}

func TestSyntheticLinearShapeAndSignal(t *testing.T) {
	d, w, err := SyntheticLinear(200, 5, 0.1, 42)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 200 || d.Dim() != 5 || len(w) != 5 {
		t.Fatal("wrong shapes")
	}
	// y should correlate with ⟨w, x⟩ strongly at low noise.
	var num, den1, den2 float64
	for i := 0; i < d.Len(); i++ {
		s := d.At(i)
		pred := 0.0
		for j, wj := range w {
			pred += wj * s.X[j]
		}
		num += pred * s.Y
		den1 += pred * pred
		den2 += s.Y * s.Y
	}
	if corr := num / math.Sqrt(den1*den2); corr < 0.98 {
		t.Fatalf("correlation %v, want ≥ 0.98", corr)
	}
}

func TestSyntheticLinearErrors(t *testing.T) {
	if _, _, err := SyntheticLinear(0, 5, 0.1, 1); err == nil {
		t.Error("expected error for m=0")
	}
	if _, _, err := SyntheticLinear(5, 0, 0.1, 1); err == nil {
		t.Error("expected error for dim=0")
	}
}

func TestSyntheticLinearDeterminism(t *testing.T) {
	a, wa, _ := SyntheticLinear(50, 3, 0.1, 7)
	b, wb, _ := SyntheticLinear(50, 3, 0.1, 7)
	for j := range wa {
		if wa[j] != wb[j] {
			t.Fatal("weights differ under same seed")
		}
	}
	for i := 0; i < a.Len(); i++ {
		if a.At(i).Y != b.At(i).Y {
			t.Fatal("samples differ under same seed")
		}
	}
	c, _, _ := SyntheticLinear(50, 3, 0.1, 8)
	same := true
	for i := 0; i < a.Len(); i++ {
		if a.At(i).Y != c.At(i).Y {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should give different data")
	}
}

func TestSyntheticClustersBalancedClasses(t *testing.T) {
	d, err := SyntheticClusters(400, 8, 4, 3.0, 11)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for i := 0; i < d.Len(); i++ {
		counts[int(d.At(i).Y)]++
	}
	if len(counts) != 4 {
		t.Fatalf("found %d classes, want 4", len(counts))
	}
	for k, c := range counts {
		if c != 100 {
			t.Fatalf("class %d has %d samples, want 100", k, c)
		}
	}
}

func TestSyntheticClustersSeparation(t *testing.T) {
	// With high separation, per-class means should be far apart relative
	// to intra-class spread.
	d, err := SyntheticClusters(1000, 4, 2, 10.0, 5)
	if err != nil {
		t.Fatal(err)
	}
	means := make([][]float64, 2)
	counts := make([]int, 2)
	for k := range means {
		means[k] = make([]float64, 4)
	}
	for i := 0; i < d.Len(); i++ {
		s := d.At(i)
		k := int(s.Y)
		counts[k]++
		for j, x := range s.X {
			means[k][j] += x
		}
	}
	dist := 0.0
	for j := 0; j < 4; j++ {
		diff := means[0][j]/float64(counts[0]) - means[1][j]/float64(counts[1])
		dist += diff * diff
	}
	if math.Sqrt(dist) < 5 {
		t.Fatalf("cluster mean distance %v too small for sep=10", math.Sqrt(dist))
	}
}

func TestSyntheticClustersErrors(t *testing.T) {
	cases := []struct{ m, dim, classes int }{
		{0, 4, 2}, {10, 0, 2}, {10, 4, 1}, {3, 4, 5},
	}
	for _, tc := range cases {
		if _, err := SyntheticClusters(tc.m, tc.dim, tc.classes, 1, 1); err == nil {
			t.Errorf("expected error for m=%d dim=%d classes=%d", tc.m, tc.dim, tc.classes)
		}
	}
}

func TestSortByLabel(t *testing.T) {
	d, err := SyntheticClusters(120, 4, 3, 2.0, 9)
	if err != nil {
		t.Fatal(err)
	}
	s := d.SortByLabel()
	if s.Len() != d.Len() || s.Dim() != d.Dim() {
		t.Fatal("shape changed")
	}
	for i := 1; i < s.Len(); i++ {
		if s.At(i).Y < s.At(i-1).Y {
			t.Fatalf("not sorted at %d: %v after %v", i, s.At(i).Y, s.At(i-1).Y)
		}
	}
	// Original untouched (SyntheticClusters shuffles, so it is unsorted).
	sorted := true
	for i := 1; i < d.Len(); i++ {
		if d.At(i).Y < d.At(i-1).Y {
			sorted = false
			break
		}
	}
	if sorted {
		t.Fatal("original dataset unexpectedly sorted — copy semantics untestable")
	}
	// Partitioning the sorted set yields class-skewed partitions: the
	// first partition must be single-class.
	parts, err := s.Partition(3)
	if err != nil {
		t.Fatal(err)
	}
	first := parts[0]
	for i := 0; i < first.Len(); i++ {
		if first.At(i).Y != first.At(0).Y {
			t.Fatal("first partition of label-sorted data must be single-class")
		}
	}
}

func TestPartition(t *testing.T) {
	d, _, err := SyntheticLinear(40, 3, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := d.Partition(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 4 {
		t.Fatalf("got %d partitions", len(parts))
	}
	total := 0
	for _, p := range parts {
		if p.Len() != 10 || p.Dim() != 3 {
			t.Fatalf("partition len=%d dim=%d", p.Len(), p.Dim())
		}
		total += p.Len()
	}
	if total != 40 {
		t.Fatal("partitions must cover the dataset")
	}
	// Contiguity: partition 1's first sample is dataset sample 10.
	if parts[1].At(0).Y != d.At(10).Y {
		t.Fatal("partitions must be contiguous slices")
	}
}

func TestPartitionErrors(t *testing.T) {
	d, _, _ := SyntheticLinear(10, 2, 0, 1)
	if _, err := d.Partition(0); err == nil {
		t.Error("expected error for n=0")
	}
	if _, err := d.Partition(3); err == nil {
		t.Error("expected error for indivisible split")
	}
}

func TestLoaderValidation(t *testing.T) {
	d, _, _ := SyntheticLinear(10, 2, 0, 1)
	if _, err := NewLoader(nil, 4, 1); err == nil {
		t.Error("expected error for nil partition")
	}
	if _, err := NewLoader(d, 0, 1); err == nil {
		t.Error("expected error for batch=0")
	}
	l, err := NewLoader(d, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if l.BatchSize() != 10 {
		t.Fatalf("oversized batch must clamp to partition size, got %d", l.BatchSize())
	}
}

// The paper's controlled-seed property: two loaders over the same partition
// with the same seed (e.g. on two different workers replicating the
// partition) must see identical batches at every step.
func TestLoaderReplicaConsistency(t *testing.T) {
	d, _, _ := SyntheticLinear(64, 3, 0.1, 2)
	l1, err := NewLoader(d, 8, 33)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := NewLoader(d, 8, 33)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 50; step++ {
		b1, b2 := l1.Batch(step), l2.Batch(step)
		for i := range b1 {
			if b1[i] != b2[i] {
				t.Fatalf("step %d: replica batches differ", step)
			}
		}
	}
}

func TestLoaderBatchProperties(t *testing.T) {
	d, _, _ := SyntheticLinear(32, 3, 0.1, 2)
	l, err := NewLoader(d, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for step := 0; step < 20; step++ {
		b := l.Batch(step)
		if len(b) != 8 {
			t.Fatalf("batch size %d", len(b))
		}
		dup := map[int]bool{}
		key := ""
		for _, i := range b {
			if i < 0 || i >= 32 {
				t.Fatalf("index %d out of range", i)
			}
			if dup[i] {
				t.Fatalf("duplicate index %d in batch", i)
			}
			dup[i] = true
			key += string(rune(i)) + ","
		}
		seen[key] = true
	}
	if len(seen) < 15 {
		t.Fatalf("batches should differ across steps, got %d distinct of 20", len(seen))
	}
	s := l.Samples(0)
	if len(s) != 8 || len(s[0].X) != 3 {
		t.Fatal("Samples resolution wrong")
	}
}

// Property: batch composition is a pure function of (seed, step).
func TestQuickLoaderPure(t *testing.T) {
	d, _, _ := SyntheticLinear(40, 2, 0.1, 3)
	f := func(seed int64, step uint8) bool {
		l1, err := NewLoader(d, 5, seed)
		if err != nil {
			return false
		}
		l2, err := NewLoader(d, 5, seed)
		if err != nil {
			return false
		}
		a, b := l1.Batch(int(step)), l2.Batch(int(step))
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
