// Package dataset provides synthetic datasets, deterministic partitioning,
// and seeded mini-batch loading for the training experiments.
//
// The paper trains ResNet-18 on CIFAR-10/ImageNet; those assets (and GPUs)
// are out of scope here, so we substitute synthetic tasks with the same
// structural role: a convex regression task and a Gaussian-cluster
// classification task whose loss curves respond to partial gradient
// recovery the same way (unbiased partial sums slow convergence in
// proportion to the fraction recovered). The substitution is documented in
// DESIGN.md.
//
// The paper "carefully control[s] all random seeds so that data in each
// batch are always the same in the same dataset partition" — Loader mirrors
// that: batch composition depends only on (partition, seed, step), never on
// which worker evaluates it.
package dataset

import (
	"fmt"
	"math/rand"
	"sort"
)

// Sample is one labeled example: features X and target Y (a class index
// cast to float64 for classification tasks).
type Sample struct {
	X []float64
	Y float64
}

// Dataset is an immutable list of samples with a fixed feature dimension.
type Dataset struct {
	samples []Sample
	dim     int
}

// New wraps samples into a Dataset, validating dimensional consistency.
func New(samples []Sample) (*Dataset, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("dataset: empty sample list")
	}
	dim := len(samples[0].X)
	if dim == 0 {
		return nil, fmt.Errorf("dataset: zero-dimensional features")
	}
	for i, s := range samples {
		if len(s.X) != dim {
			return nil, fmt.Errorf("dataset: sample %d has dim %d, want %d", i, len(s.X), dim)
		}
	}
	out := make([]Sample, len(samples))
	copy(out, samples)
	return &Dataset{samples: out, dim: dim}, nil
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.samples) }

// Dim returns the feature dimension.
func (d *Dataset) Dim() int { return d.dim }

// At returns sample i (shared backing arrays; treat as read-only).
func (d *Dataset) At(i int) Sample { return d.samples[i] }

// SyntheticLinear generates m samples of a noisy linear model
// y = ⟨w*, x⟩ + ε with x ~ N(0, I_dim), ε ~ N(0, noise²). It returns the
// dataset and the ground-truth weights, enabling exact-recovery assertions
// in tests.
func SyntheticLinear(m, dim int, noise float64, seed int64) (*Dataset, []float64, error) {
	if m <= 0 || dim <= 0 {
		return nil, nil, fmt.Errorf("dataset: need m, dim > 0, got m=%d dim=%d", m, dim)
	}
	rng := rand.New(rand.NewSource(seed))
	w := make([]float64, dim)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	samples := make([]Sample, m)
	for i := range samples {
		x := make([]float64, dim)
		y := 0.0
		for j := range x {
			x[j] = rng.NormFloat64()
			y += w[j] * x[j]
		}
		y += noise * rng.NormFloat64()
		samples[i] = Sample{X: x, Y: y}
	}
	d, err := New(samples)
	return d, w, err
}

// SyntheticClusters generates m samples from `classes` Gaussian clusters in
// dim dimensions (our CIFAR-10 stand-in for the classification
// experiments): cluster centers are drawn N(0, sep²·I), each sample is its
// center plus N(0, I) noise, and Y is the class index. Class sizes are
// balanced up to rounding.
func SyntheticClusters(m, dim, classes int, sep float64, seed int64) (*Dataset, error) {
	if m <= 0 || dim <= 0 || classes <= 1 {
		return nil, fmt.Errorf("dataset: need m, dim > 0 and classes > 1, got m=%d dim=%d classes=%d", m, dim, classes)
	}
	if m < classes {
		return nil, fmt.Errorf("dataset: need m ≥ classes, got m=%d classes=%d", m, classes)
	}
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, classes)
	for k := range centers {
		centers[k] = make([]float64, dim)
		for j := range centers[k] {
			centers[k][j] = sep * rng.NormFloat64()
		}
	}
	samples := make([]Sample, m)
	for i := range samples {
		k := i % classes
		x := make([]float64, dim)
		for j := range x {
			x[j] = centers[k][j] + rng.NormFloat64()
		}
		samples[i] = Sample{X: x, Y: float64(k)}
	}
	// Shuffle so partitions are class-balanced in expectation.
	rng.Shuffle(len(samples), func(i, j int) { samples[i], samples[j] = samples[j], samples[i] })
	return New(samples)
}

// SortByLabel returns a new dataset with samples stably ordered by their
// label Y. Partitioning a label-sorted dataset yields class-skewed
// partitions — the adversarial placement for schemes that can lose whole
// partitions: an ignored partition then means an (almost) ignored class.
// This is how the bias study reproduces the paper's Sec. I observation
// that "if some worker experiences severe or consistently lower
// performance, IS-SGD will still make the training biased toward the
// other dataset partitions".
func (d *Dataset) SortByLabel() *Dataset {
	samples := make([]Sample, len(d.samples))
	copy(samples, d.samples)
	sort.SliceStable(samples, func(i, j int) bool { return samples[i].Y < samples[j].Y })
	return &Dataset{samples: samples, dim: d.dim}
}

// Partition splits the dataset into n equal contiguous partitions
// (D_1, …, D_n in the paper). The dataset length must be divisible by n so
// every partition carries the same gradient weight (the paper's equal-split
// assumption); trailing samples are dropped with an error if not.
func (d *Dataset) Partition(n int) ([]*Dataset, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dataset: need n > 0 partitions, got %d", n)
	}
	if d.Len()%n != 0 {
		return nil, fmt.Errorf("dataset: %d samples not divisible into %d equal partitions", d.Len(), n)
	}
	size := d.Len() / n
	parts := make([]*Dataset, n)
	for i := range parts {
		parts[i] = &Dataset{samples: d.samples[i*size : (i+1)*size], dim: d.dim}
	}
	return parts, nil
}

// Loader yields deterministic mini-batches from one partition: the batch at
// step t depends only on (seed, t), so replicas of a partition on different
// workers see identical batches — the property the paper relies on for
// coded gradients from different workers to be summable.
type Loader struct {
	part  *Dataset
	batch int
	seed  int64
}

// NewLoader creates a loader over part with the given batch size.
func NewLoader(part *Dataset, batch int, seed int64) (*Loader, error) {
	if part == nil || part.Len() == 0 {
		return nil, fmt.Errorf("dataset: loader over empty partition")
	}
	if batch <= 0 {
		return nil, fmt.Errorf("dataset: need batch > 0, got %d", batch)
	}
	if batch > part.Len() {
		batch = part.Len()
	}
	return &Loader{part: part, batch: batch, seed: seed}, nil
}

// BatchSize returns the effective batch size.
func (l *Loader) BatchSize() int { return l.batch }

// Batch returns the mini-batch for step t as sample indices into the
// partition. The same (seed, t) always yields the same batch.
func (l *Loader) Batch(t int) []int {
	const mix = int64(-0x61c8864680b583eb) // golden-ratio mixing constant
	rng := rand.New(rand.NewSource(l.seed ^ (int64(t)+1)*mix))
	idx := rng.Perm(l.part.Len())[:l.batch]
	return idx
}

// Samples resolves the step-t batch to samples.
func (l *Loader) Samples(t int) []Sample {
	idx := l.Batch(t)
	out := make([]Sample, len(idx))
	for i, j := range idx {
		out[i] = l.part.At(j)
	}
	return out
}
