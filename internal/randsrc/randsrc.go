// Package randsrc makes math/rand streams checkpointable. The standard
// library's rand.Source hides its internal state, so a process that wants
// to resume a run bit-identically after a crash cannot serialize "where
// the RNG is". Source solves this by owning the (seed, draw count) pair:
// it delegates to the stdlib generator but counts every value produced,
// and restoring is re-seeding plus replaying that many draws.
//
// Replay is exact because both Int63 and Uint64 consume exactly one value
// from the underlying additive-lagged-Fibonacci stream, so the position is
// fully described by the number of calls. Replay cost is linear in the
// draw count (a few ns per draw) — negligible against the training steps
// that produced the draws.
//
// Every consumer of randomness on the durable path (the IS-GC decoder's
// fairness draws, straggler profiles, worker delay/fault sampling) builds
// its *rand.Rand on a Source so a checkpoint can capture the position and
// a restore can land on the very next value the crashed process would have
// drawn.
package randsrc

import "math/rand"

// Source is a rand.Source64 with a serializable position: the seed it was
// created with and the number of values drawn since. Not safe for
// concurrent use (neither is the rand.Rand that wraps it).
type Source struct {
	seed  int64
	draws uint64
	src   rand.Source64
}

// New returns a Source seeded with seed, positioned at draw 0.
func New(seed int64) *Source {
	return &Source{seed: seed, src: rand.NewSource(seed).(rand.Source64)}
}

// Int63 implements rand.Source.
func (s *Source) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

// Uint64 implements rand.Source64.
func (s *Source) Uint64() uint64 {
	s.draws++
	return s.src.Uint64()
}

// Seed implements rand.Source: it re-seeds and resets the position.
func (s *Source) Seed(seed int64) {
	s.seed = seed
	s.draws = 0
	s.src.Seed(seed)
}

// State returns the seed and the number of values drawn so far — the
// serializable stream position.
func (s *Source) State() (seed int64, draws uint64) { return s.seed, s.draws }

// Restore repositions the source to (seed, draws): re-seed, then burn
// draws values. After Restore the next value equals the (draws+1)-th value
// of a fresh seed-seeded source.
func (s *Source) Restore(seed int64, draws uint64) {
	s.Seed(seed)
	for i := uint64(0); i < draws; i++ {
		s.src.Uint64()
	}
	s.draws = draws
}

// Rand returns a *rand.Rand drawing from s. Helper for the common
// construction; callers keep s to capture and restore its state.
func (s *Source) Rand() *rand.Rand { return rand.New(s) }
