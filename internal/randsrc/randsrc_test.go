package randsrc

import (
	"math/rand"
	"testing"
)

// TestRestoreExact pins the core durability property: a source restored to
// (seed, draws) produces exactly the stream a fresh source produces after
// draws values — for every consumption pattern rand.Rand uses (single
// values, variable-draw rejection sampling, ziggurat tails).
func TestRestoreExact(t *testing.T) {
	ref := New(7)
	refRand := ref.Rand()
	// Mixed consumption: Intn uses rejection sampling (variable draws),
	// NormFloat64/ExpFloat64 use ziggurat fallback loops.
	for i := 0; i < 1000; i++ {
		refRand.Intn(17)
		refRand.NormFloat64()
		refRand.ExpFloat64()
	}
	seed, draws := ref.State()
	if seed != 7 || draws == 0 {
		t.Fatalf("State() = (%d, %d), want seed 7 and nonzero draws", seed, draws)
	}

	restored := New(99) // wrong seed on purpose; Restore must fix it
	restored.Restore(seed, draws)
	resRand := restored.Rand()
	for i := 0; i < 1000; i++ {
		if a, b := refRand.Int63(), resRand.Int63(); a != b {
			t.Fatalf("draw %d diverged after restore: %d vs %d", i, a, b)
		}
		if a, b := refRand.ExpFloat64(), resRand.ExpFloat64(); a != b {
			t.Fatalf("exp draw %d diverged after restore: %v vs %v", i, a, b)
		}
	}
}

// TestMatchesStdlib asserts the counting wrapper is transparent: the
// values are exactly those of a plain rand.NewSource stream.
func TestMatchesStdlib(t *testing.T) {
	s := New(42)
	plain := rand.New(rand.NewSource(42))
	wrapped := s.Rand()
	for i := 0; i < 256; i++ {
		if a, b := plain.Uint64(), wrapped.Uint64(); a != b {
			t.Fatalf("value %d: wrapper %d != stdlib %d", i, b, a)
		}
	}
	if _, draws := s.State(); draws != 256 {
		t.Fatalf("draws = %d, want 256 (one per Uint64)", draws)
	}
}

// TestSeedResets asserts Seed zeroes the position.
func TestSeedResets(t *testing.T) {
	s := New(1)
	s.Rand().Intn(1000)
	s.Seed(2)
	if seed, draws := s.State(); seed != 2 || draws != 0 {
		t.Fatalf("after Seed: (%d, %d), want (2, 0)", seed, draws)
	}
}

// TestRestoreZeroDraws is the fresh-start edge: restoring to position 0
// equals a new source.
func TestRestoreZeroDraws(t *testing.T) {
	a, b := New(5), New(6)
	b.Restore(5, 0)
	for i := 0; i < 64; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("value %d: %d != %d", i, x, y)
		}
	}
}
