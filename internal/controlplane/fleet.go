package controlplane

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"isgc/internal/events"
)

// defaultAgentTimeout declares an agent dead after this much silence; the
// agents ping every defaultPingInterval, so a handful of missed pings is a
// dead process or a cut link, not a hiccup.
const (
	defaultAgentTimeout = 5 * time.Second
	defaultPingInterval = 500 * time.Millisecond
)

// fleetAgent is the server-side view of one registered agent.
type fleetAgent struct {
	name     string
	c        *fconn
	alive    bool
	lastSeen time.Time
	// jobID/workerID track the agent's current assignment ("" = idle). An
	// assignment sticks until the agent reports done or dies — the
	// scheduler never guesses at an agent's state.
	jobID    string
	workerID int
	// epoch counts this agent's bindings (claims and assignments). Each
	// pushed Assignment carries the epoch it was stamped with, and the
	// agent echoes it in the matching fleetDone; a done whose epoch is not
	// the current one belongs to a superseded assignment and must not
	// clear the binding.
	epoch int
	// gen increments per (re-)registration so a stale reader cannot mark a
	// reborn agent's fresh connection dead.
	gen int
}

// AgentView is the /fleet snapshot of one agent.
type AgentView struct {
	Name               string  `json:"name"`
	Alive              bool    `json:"alive"`
	JobID              string  `json:"job,omitempty"`
	WorkerID           int     `json:"worker"`
	LastSeenAgeSeconds float64 `json:"last_seen_age_seconds"`
}

// fleet is the control plane's membership service: agents dial in, stay
// registered via pings, receive assignments, and report completions. It
// owns no job state — the scheduler drives it through Idle/Assign/Release
// and listens on the two callbacks.
type fleet struct {
	ln      net.Listener
	timeout time.Duration
	events  *events.Log
	metrics *PlaneMetrics

	// onDone fires (outside the fleet lock) when an agent reports an
	// assignment ended; onChange fires when the pool changes shape (agent
	// registered, died, or went idle) so the scheduler can retry admission.
	onDone   func(agent, jobID, status, errMsg string)
	onChange func()

	mu     sync.Mutex
	agents map[string]*fleetAgent
	closed bool

	quit chan struct{}
	wg   sync.WaitGroup
}

func newFleet(timeout time.Duration, ev *events.Log, pm *PlaneMetrics) *fleet {
	if timeout <= 0 {
		timeout = defaultAgentTimeout
	}
	return &fleet{
		timeout: timeout,
		events:  ev,
		metrics: pm,
		agents:  make(map[string]*fleetAgent),
		quit:    make(chan struct{}),
	}
}

// start binds the listener and serves registrations until close.
func (f *fleet) start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("controlplane: fleet listen: %w", err)
	}
	f.ln = ln
	f.wg.Add(2)
	go f.acceptLoop()
	go f.monitor()
	return nil
}

func (f *fleet) addr() string { return f.ln.Addr().String() }

// close tells every agent to exit, closes all connections, and stops the
// loops.
func (f *fleet) close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	conns := make([]*fconn, 0, len(f.agents))
	for _, a := range f.agents {
		if a.alive {
			conns = append(conns, a.c)
		}
	}
	f.mu.Unlock()
	close(f.quit)
	for _, c := range conns {
		_ = c.send(&fleetMsg{Kind: fleetStop})
		c.close()
	}
	if f.ln != nil {
		_ = f.ln.Close()
	}
	f.wg.Wait()
}

func (f *fleet) acceptLoop() {
	defer f.wg.Done()
	for {
		raw, err := f.ln.Accept()
		if err != nil {
			return // listener closed
		}
		f.register(raw)
	}
}

// register validates the hello and installs (or replaces) the agent.
func (f *fleet) register(raw net.Conn) {
	c := newFconn(raw)
	_ = raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	hello, err := c.recv()
	if err != nil || hello.Kind != fleetHello {
		c.close()
		return
	}
	_ = raw.SetReadDeadline(time.Time{})
	name := hello.Name

	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		c.close()
		return
	}
	prev := f.agents[name]
	gen := 0
	if prev != nil {
		gen = prev.gen + 1
		if prev.alive {
			// Same name re-registering over a live connection: the old
			// process is gone or split-brained; the newcomer wins.
			prev.c.close()
		}
	}
	f.agents[name] = &fleetAgent{name: name, c: c, alive: true, lastSeen: time.Now(), gen: gen}
	f.mu.Unlock()

	f.events.Info("plane.agent_registered", "fleet agent registered", events.NoStep, events.NoWorker,
		events.Fields{"agent": name, "generation": gen})
	f.updateGauges()
	if f.onChange != nil {
		f.onChange()
	}
	f.wg.Add(1)
	go f.readFrom(name, gen, c)
}

// readFrom pumps one agent connection until it breaks; pings refresh
// liveness, dones return the agent to the pool.
func (f *fleet) readFrom(name string, gen int, c *fconn) {
	defer f.wg.Done()
	for {
		m, err := c.recv()
		if err != nil {
			break
		}
		f.mu.Lock()
		a := f.agents[name]
		if a == nil || a.gen != gen {
			f.mu.Unlock()
			return // superseded by a re-registration
		}
		a.lastSeen = time.Now()
		var done *fleetMsg
		stale := false
		if m.Kind == fleetDone {
			// Only a done for the CURRENT assignment epoch frees the agent.
			// A superseding assignment (live re-placement hands survivors
			// their new slot while the old worker is still winding down)
			// bumps the epoch first, so the old worker's late done must not
			// mark the agent idle — that would let admission hand the agent
			// to another job and kill the successor run.
			if m.Epoch == a.epoch {
				a.jobID, a.workerID = "", 0
				done = m
			} else {
				stale = true
			}
		}
		f.mu.Unlock()
		if stale {
			f.events.Debug("plane.agent_done_stale", "ignoring done from a superseded assignment",
				events.NoStep, events.NoWorker, events.Fields{"agent": name, "job": m.JobID,
					"status": m.Status, "epoch": m.Epoch})
		}
		if done != nil {
			f.events.Info("plane.agent_done", "agent finished its assignment", events.NoStep,
				events.NoWorker, events.Fields{"agent": name, "job": done.JobID, "status": done.Status})
			f.updateGauges()
			if f.onDone != nil {
				f.onDone(name, done.JobID, done.Status, done.Error)
			}
			if f.onChange != nil {
				f.onChange()
			}
		}
	}
	f.mu.Lock()
	a := f.agents[name]
	current := a != nil && a.gen == gen
	closed := f.closed
	if current {
		a.alive = false
	}
	f.mu.Unlock()
	if current {
		c.close()
		if !closed {
			f.events.Warn("plane.agent_lost", "fleet agent connection lost", events.NoStep,
				events.NoWorker, events.Fields{"agent": name, "generation": gen})
			f.updateGauges()
			if f.onChange != nil {
				f.onChange()
			}
		}
	}
}

// monitor closes connections of agents that stopped pinging; the reader
// then marks them dead — the same single-eviction-path discipline the
// cluster master uses.
func (f *fleet) monitor() {
	defer f.wg.Done()
	interval := f.timeout / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-f.quit:
			return
		case <-t.C:
			now := time.Now()
			var victims []*fconn
			f.mu.Lock()
			for _, a := range f.agents {
				if a.alive && now.Sub(a.lastSeen) > f.timeout {
					victims = append(victims, a.c)
				}
			}
			f.mu.Unlock()
			for _, c := range victims {
				c.close()
			}
		}
	}
}

// idle returns the names of alive, unassigned agents, sorted — the sort
// makes admission's worker-id ↔ agent mapping deterministic, which the
// bit-equivalence tests rely on.
func (f *fleet) idle() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []string
	for name, a := range f.agents {
		if a.alive && a.jobID == "" {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// aliveAgent reports whether the named agent is currently alive.
func (f *fleet) aliveAgent(name string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	a := f.agents[name]
	return a != nil && a.alive
}

// assign pushes an assignment to a live agent and records the binding. A
// busy agent may be re-assigned (re-placement hands survivors their new
// worker id directly); the agent stops its old worker first.
func (f *fleet) assign(name string, as *Assignment) error {
	f.mu.Lock()
	a := f.agents[name]
	if a == nil || !a.alive {
		f.mu.Unlock()
		return fmt.Errorf("controlplane: agent %q is not alive", name)
	}
	a.epoch++
	as.Epoch = a.epoch
	a.jobID, a.workerID = as.JobID, as.WorkerID
	c := a.c
	f.mu.Unlock()
	f.updateGauges()
	if err := c.send(&fleetMsg{Kind: fleetAssign, Assign: as}); err != nil {
		c.close() // the reader marks it dead
		return fmt.Errorf("controlplane: assign to %q: %w", name, err)
	}
	return nil
}

// release asks an agent to stop its worker for the given job and return to
// the pool. Job-scoped end to end: the fleet only sends it while the agent
// is still bound to that job, and the agent ignores a release for a job it
// no longer runs — so a late release can never kill a successor
// assignment. Best-effort: a dead agent is already out of the pool.
func (f *fleet) release(name, jobID string) {
	f.mu.Lock()
	a := f.agents[name]
	var c *fconn
	if a != nil && a.alive && a.jobID == jobID {
		c = a.c
	}
	f.mu.Unlock()
	if c != nil {
		if err := c.send(&fleetMsg{Kind: fleetRelease, JobID: jobID}); err != nil {
			c.close()
		}
	}
}

// unclaim drops a claim that never became an assignment (admission
// reserved the agents, then observed the job was killed before any
// assignment was pushed). There is nothing for the agent to stop and no
// done will ever arrive for the claim, so the binding is cleared directly
// — a release here would leave the agent stuck busy forever.
func (f *fleet) unclaim(name, jobID string) {
	f.mu.Lock()
	a := f.agents[name]
	changed := a != nil && a.jobID == jobID
	if changed {
		a.jobID, a.workerID = "", 0
	}
	f.mu.Unlock()
	if changed {
		f.updateGauges()
		if f.onChange != nil {
			f.onChange()
		}
	}
}

// snapshot returns the /fleet view, sorted by name.
func (f *fleet) snapshot() []AgentView {
	f.mu.Lock()
	defer f.mu.Unlock()
	now := time.Now()
	out := make([]AgentView, 0, len(f.agents))
	for _, a := range f.agents {
		out = append(out, AgentView{
			Name: a.name, Alive: a.alive, JobID: a.jobID, WorkerID: a.workerID,
			LastSeenAgeSeconds: now.Sub(a.lastSeen).Seconds(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// updateGauges refreshes the fleet-size gauges after any membership or
// assignment change.
func (f *fleet) updateGauges() {
	if f.metrics == nil {
		return
	}
	f.mu.Lock()
	alive, idle := 0, 0
	for _, a := range f.agents {
		if a.alive {
			alive++
			if a.jobID == "" {
				idle++
			}
		}
	}
	f.mu.Unlock()
	f.metrics.setFleet(alive, idle)
}
