// Fleet wire protocol: the gob stream spoken between the control plane's
// fleet server and its worker-side agents. It is deliberately tiny — an
// agent registers once with a hello, then receives assignments and
// releases, and reports back pings and per-assignment completions. The
// gradient hot path never touches this channel; an assignment only tells
// the agent where the job's master listens, and the agent's cluster.Worker
// talks to that master directly.
package controlplane

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"

	"isgc/internal/cliconfig"
)

// Fleet message kinds.
const (
	// fleetHello registers an agent (agent → fleet; Name set).
	fleetHello = "hello"
	// fleetPing is the agent's liveness heartbeat (agent → fleet).
	fleetPing = "ping"
	// fleetDone reports that an assignment ended (agent → fleet; JobID and
	// Status set). The agent is idle again once sent.
	fleetDone = "done"
	// fleetAssign hands the agent a new assignment (fleet → agent; Assign
	// set). It supersedes any assignment the agent is still running: the
	// agent stops the old worker first, then starts the new one.
	fleetAssign = "assign"
	// fleetRelease tells the agent to stop its current worker and return
	// to the pool (fleet → agent).
	fleetRelease = "release"
	// fleetStop tells the agent to exit entirely (fleet → agent; plane
	// shutdown).
	fleetStop = "stop"
)

// Assignment completion statuses (fleetDone.Status).
const (
	// StatusExited: the worker run ended on its own — the master said stop,
	// the job's injected fault killed it, or the reconnect budget ran out.
	StatusExited = "exited"
	// StatusStopped: the agent stopped the worker on a release or a
	// superseding assignment.
	StatusStopped = "stopped"
	// StatusJobGone: the master (or its tombstone) said the job no longer
	// exists, so the worker bowed out early instead of burning its redial
	// budget.
	StatusJobGone = "job_gone"
	// StatusError: the worker could not be built or failed hard.
	StatusError = "error"
)

// Assignment is everything an agent needs to serve one worker slot of one
// job: the master to dial and the scheme/data specs that make its loaders
// bit-identical to every other replica of its partitions.
type Assignment struct {
	// JobID names the job; it comes back in the agent's fleetDone.
	JobID string
	// Epoch is the agent's monotonic assignment epoch, stamped by the
	// fleet when the assignment is pushed and echoed in the agent's
	// fleetDone. The fleet only clears the agent's binding when the done's
	// epoch matches the current one — matching on JobID/WorkerID is not
	// enough, because a survivor re-assignment during live re-placement
	// reuses the same job id and may reuse the worker id, and the stale
	// done of the superseded run must not free the agent mid-run.
	Epoch int
	// Generation is the job's master generation (0 on admission, +1 per
	// re-placement) — for logs and events only.
	Generation int
	// WorkerID is this agent's index in the job's placement, in [0, N).
	WorkerID int
	// MasterAddr is the job master's listen address.
	MasterAddr string
	// Scheme is the job's placement spec with N already set to the actual
	// placement size of this generation (shrunk placements after a
	// re-placement carry the shrunk N).
	Scheme cliconfig.SchemeSpec
	// Data is the job's shared dataset/loader spec.
	Data cliconfig.DataSpec
	// Wire selects the worker's wire codec proposal ("" = binary).
	Wire string
	// ComputePar sizes the worker's gradient pool (0 = GOMAXPROCS).
	ComputePar int
	// HeartbeatInterval is the worker's liveness ping period (0 = 1s).
	HeartbeatInterval time.Duration
	// ReconnectTimeout bounds the worker's redial budget after connection
	// loss (0 disables reconnection).
	ReconnectTimeout time.Duration
	// Delay, when positive, injects an exponential straggler delay with
	// this mean before each upload (tests and demos).
	Delay time.Duration
	// CrashAtStep, when ≥ 0, injects a permanent crash at that step
	// (tests and demos; the scheduler only sets it on generation 0 so a
	// re-placement does not immediately re-kill the replacement worker).
	CrashAtStep int
}

// fleetMsg is the single envelope both directions share.
type fleetMsg struct {
	Kind   string
	Name   string      // fleetHello: agent name
	JobID  string      // fleetDone: which assignment ended
	Status string      // fleetDone: how it ended
	Error  string      // fleetDone: diagnostic for StatusError
	Epoch  int         // fleetDone: the ended assignment's epoch
	Assign *Assignment // fleetAssign payload
}

// validateFleetMsg rejects envelopes that could only come from a confused
// or hostile peer, before they reach any state machine.
func validateFleetMsg(m *fleetMsg) error {
	switch m.Kind {
	case fleetHello:
		if m.Name == "" {
			return fmt.Errorf("controlplane: hello with empty agent name")
		}
	case fleetPing, fleetRelease, fleetStop:
	case fleetDone:
		switch m.Status {
		case StatusExited, StatusStopped, StatusJobGone, StatusError:
		default:
			return fmt.Errorf("controlplane: done with unknown status %q", m.Status)
		}
	case fleetAssign:
		if m.Assign == nil {
			return fmt.Errorf("controlplane: assign without payload")
		}
		if m.Assign.WorkerID < 0 || m.Assign.WorkerID >= m.Assign.Scheme.N {
			return fmt.Errorf("controlplane: assign worker %d out of range [0,%d)",
				m.Assign.WorkerID, m.Assign.Scheme.N)
		}
	default:
		return fmt.Errorf("controlplane: unknown fleet message kind %q", m.Kind)
	}
	return nil
}

// fleetWriteTimeout bounds one outbound send on either side so a stalled
// socket cannot wedge the fleet server's assignment push or an agent's
// completion report.
const fleetWriteTimeout = 5 * time.Second

// fconn is one fleet-protocol connection: a gob codec with serialized,
// deadline-bounded sends (the fleet server pushes assignments from the
// scheduler goroutine while the liveness monitor may concurrently close).
type fconn struct {
	raw net.Conn
	enc *gob.Encoder
	dec *gob.Decoder

	sendMu    sync.Mutex
	closeOnce sync.Once
}

func newFconn(raw net.Conn) *fconn {
	return &fconn{raw: raw, enc: gob.NewEncoder(raw), dec: gob.NewDecoder(raw)}
}

func (c *fconn) send(m *fleetMsg) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	_ = c.raw.SetWriteDeadline(time.Now().Add(fleetWriteTimeout))
	err := c.enc.Encode(m)
	_ = c.raw.SetWriteDeadline(time.Time{})
	return err
}

func (c *fconn) recv() (*fleetMsg, error) {
	var m fleetMsg
	if err := c.dec.Decode(&m); err != nil {
		return nil, err
	}
	if err := validateFleetMsg(&m); err != nil {
		return nil, err
	}
	return &m, nil
}

func (c *fconn) close() {
	c.closeOnce.Do(func() { _ = c.raw.Close() })
}
