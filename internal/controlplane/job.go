package controlplane

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"isgc/internal/checkpoint"
	"isgc/internal/cliconfig"
	"isgc/internal/cluster"
	"isgc/internal/trace"
)

// JobState is one node of the job lifecycle state machine:
//
//	pending → running → completed | failed
//	            ↕ replacing (live re-placement: quiesce, re-derive, resume)
//	running/pending → killed  (operator kill: discard)
//	running → drained          (operator drain: quiesce + final checkpoint)
//
// A control-plane restart re-admits pending/running/replacing jobs from
// the scheduler's own checkpoint; terminal states are records only.
type JobState string

const (
	JobPending   JobState = "pending"
	JobRunning   JobState = "running"
	JobReplacing JobState = "replacing"
	JobCompleted JobState = "completed"
	JobFailed    JobState = "failed"
	JobKilled    JobState = "killed"
	JobDrained   JobState = "drained"
)

// terminal reports whether a state is final (no master, no agents).
func (s JobState) terminal() bool {
	switch s {
	case JobCompleted, JobFailed, JobKilled, JobDrained:
		return true
	}
	return false
}

// WorkerFault injects a deterministic fault or delay on one worker slot of
// a job — the control-plane counterpart of the isgc-worker CLI's -crash-at
// and -delay flags, used by tests and demos to reproduce machine loss.
// Faults apply to generation 0 only: a re-placement's replacement workers
// start clean (CrashAt is permanent, so re-applying it would kill every
// successor immediately).
type WorkerFault struct {
	// Worker is the slot index in [0, N).
	Worker int `json:"worker"`
	// CrashAtStep kills the worker at that step (< 0 disables; omitted in
	// JSON it defaults to -1, not 0 — see UnmarshalJSON).
	CrashAtStep int `json:"crash_at_step"`
	// Delay injects an exponential pre-upload delay with this mean.
	Delay time.Duration `json:"delay,omitempty"`
}

// UnmarshalJSON defaults an omitted crash_at_step to -1 (disabled). The
// struct zero value would otherwise mean "crash at step 0", so a fault
// that only sets a delay would kill its worker immediately.
func (f *WorkerFault) UnmarshalJSON(b []byte) error {
	type plain WorkerFault // no methods: plain decode, no recursion
	p := plain{CrashAtStep: -1}
	if err := json.Unmarshal(b, &p); err != nil {
		return err
	}
	*f = WorkerFault(p)
	return nil
}

// JobSpec is everything a job submission carries — scheme, data, training
// hyperparameters, and runtime policy. The zero value of most fields means
// "use the default"; Normalize resolves them.
type JobSpec struct {
	// Name is a human label (defaults to the job id).
	Name string `json:"name,omitempty"`
	// Scheme is the placement spec; Scheme.N is the fleet size the job
	// wants (a re-placement may shrink the actual placement).
	Scheme cliconfig.SchemeSpec `json:"scheme"`
	// Data is the shared dataset/loader spec (zero → cliconfig defaults
	// with Seed 42).
	Data cliconfig.DataSpec `json:"data"`
	// W is how many workers the master waits for per step (0 = all).
	W int `json:"w,omitempty"`
	// LearningRate is η (0 → 0.2).
	LearningRate float64 `json:"learning_rate,omitempty"`
	// MaxSteps bounds the run (0 → 100).
	MaxSteps int `json:"max_steps,omitempty"`
	// LossThreshold stops early when reached (0 disables).
	LossThreshold float64 `json:"loss_threshold,omitempty"`
	// ComputePar sizes master and worker compute pools (0 = GOMAXPROCS;
	// 1 makes the loss bits independent of the host's core count).
	ComputePar int `json:"compute_par,omitempty"`
	// Wire selects the wire codec ("" = binary).
	Wire string `json:"wire,omitempty"`
	// CheckpointEvery is the durable checkpoint period in steps when the
	// plane has a state dir (0 → 10).
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// StepTimeout bounds one step's gather (0 disables).
	StepTimeout time.Duration `json:"step_timeout,omitempty"`
	// LivenessTimeout declares a worker dead after this much silence
	// (0 → 2s under a control plane — much tighter than the standalone
	// master's 15s, because the plane can actually act on it).
	LivenessTimeout time.Duration `json:"liveness_timeout,omitempty"`
	// PermanentAfter is how long a worker may stay dead before the plane
	// re-derives the placement (0 → 2× LivenessTimeout).
	PermanentAfter time.Duration `json:"permanent_after,omitempty"`
	// HeartbeatInterval is the workers' ping period (0 → 1s).
	HeartbeatInterval time.Duration `json:"heartbeat_interval,omitempty"`
	// ReconnectTimeout bounds a worker's redial budget (0 → 10s).
	ReconnectTimeout time.Duration `json:"reconnect_timeout,omitempty"`
	// Faults optionally injects per-worker crash/delay on generation 0.
	Faults []WorkerFault `json:"faults,omitempty"`
}

// Normalize fills defaults and validates; it is called on every submission
// path (API, CLI, tests) so a job object always carries resolved values.
func (s *JobSpec) Normalize() error {
	if s.Data.Samples == 0 && s.Data.Features == 0 {
		seed := s.Data.Seed
		if seed == 0 {
			seed = 42
		}
		s.Data = cliconfig.DefaultData(seed)
	}
	if s.LearningRate == 0 {
		s.LearningRate = 0.2
	}
	if s.LearningRate < 0 {
		return fmt.Errorf("controlplane: need learning rate > 0, got %v", s.LearningRate)
	}
	if s.MaxSteps == 0 {
		s.MaxSteps = 100
	}
	if s.MaxSteps < 0 {
		return fmt.Errorf("controlplane: need max steps > 0, got %d", s.MaxSteps)
	}
	if s.CheckpointEvery <= 0 {
		s.CheckpointEvery = 10
	}
	if s.LivenessTimeout == 0 {
		s.LivenessTimeout = 2 * time.Second
	}
	if s.PermanentAfter == 0 {
		s.PermanentAfter = 2 * s.LivenessTimeout
	}
	if s.ReconnectTimeout == 0 {
		s.ReconnectTimeout = 10 * time.Second
	}
	if _, err := cluster.ParseWire(s.Wire); err != nil {
		return err
	}
	for _, f := range s.Faults {
		if f.Worker < 0 || f.Worker >= s.Scheme.N {
			return fmt.Errorf("controlplane: fault worker %d out of range [0,%d)", f.Worker, s.Scheme.N)
		}
	}
	// The placement must build at the requested size — a spec that cannot
	// produce a placement is rejected at submission, not at admission.
	if _, err := s.Scheme.Build(); err != nil {
		return err
	}
	return nil
}

// job is the scheduler's runtime view of one admitted (or pending) job.
// The immutable identity (id, spec) needs no lock; everything else is
// guarded by mu.
type job struct {
	id   string
	spec JobSpec

	mu    sync.Mutex
	state JobState
	// gen counts master generations: 0 on admission, +1 per re-placement.
	gen int
	// n is the current placement size (spec.Scheme.N until a shrink).
	n int
	// agents maps worker id → agent name for the current generation.
	agents []string
	// master is the live master (nil between generations / when not
	// running).
	master *cluster.Master
	// lastMasterAddr remembers the previous master's listen address so a
	// kill/drain can leave a MsgJobGone tombstone on it.
	lastMasterAddr string
	// run accumulates step records across generations.
	run trace.Run
	// params is the latest post-step parameter vector (warm-handoff
	// state between generations).
	params []float64
	// nextStep is the next step a successor generation broadcasts.
	nextStep int
	// randSeed/randDraws carry the decoder RNG position across
	// generations so a re-placement that preserves the fleet shape stays
	// bit-identical to an uninterrupted run.
	randSeed  int64
	randDraws uint64
	hasRand   bool
	// stopReason tells runJob why the master was quiesced.
	stopReason stopReason
	// evicted is the worker id whose permanent eviction triggered the
	// current re-placement (-1 otherwise).
	evicted int
	// replacements counts completed re-placements.
	replacements int
	// converged/err capture the final outcome.
	converged bool
	errMsg    string
	// resume marks a job re-admitted after a control-plane restart: its
	// first generation restores from the job's durable checkpoint.
	resume bool
	// store is the job's durable checkpoint store (nil without a state
	// dir).
	store *checkpoint.Store

	submitted time.Time
	started   time.Time
	finished  time.Time
	// replanAt stamps the re-placement trigger for the latency histogram.
	replanAt time.Time
}

// stopReason is why a running master was asked to quiesce.
type stopReason string

const (
	stopNone     stopReason = ""
	stopReplan   stopReason = "replan"
	stopDrain    stopReason = "drain"
	stopKill     stopReason = "kill"
	stopShutdown stopReason = "shutdown"
)

// JobWorkerView is one row of a job's worker → agent mapping.
type JobWorkerView struct {
	Worker int    `json:"worker"`
	Agent  string `json:"agent"`
}

// JobStatus is the API's job snapshot.
type JobStatus struct {
	ID           string          `json:"id"`
	Name         string          `json:"name"`
	State        JobState        `json:"state"`
	Scheme       string          `json:"scheme"`
	N            int             `json:"n"`
	RequestedN   int             `json:"requested_n"`
	Step         int             `json:"step"`
	MaxSteps     int             `json:"max_steps"`
	Generation   int             `json:"generation"`
	Replacements int             `json:"replacements"`
	Converged    bool            `json:"converged"`
	FinalLoss    float64         `json:"final_loss,omitempty"`
	Error        string          `json:"error,omitempty"`
	Workers      []JobWorkerView `json:"workers,omitempty"`
	SubmittedAt  time.Time       `json:"submitted_at"`
	FinishedAt   *time.Time      `json:"finished_at,omitempty"`
}

// status snapshots the job for the API; live steps come from the running
// master's health view.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:           j.id,
		Name:         j.spec.Name,
		State:        j.state,
		Scheme:       fmt.Sprintf("%s(n=%d,c=%d)", j.spec.Scheme.Scheme, j.spec.Scheme.N, j.spec.Scheme.C),
		N:            j.n,
		RequestedN:   j.spec.Scheme.N,
		Step:         j.nextStep,
		MaxSteps:     j.spec.MaxSteps,
		Generation:   j.gen,
		Replacements: j.replacements,
		Converged:    j.converged,
		Error:        j.errMsg,
		SubmittedAt:  j.submitted,
	}
	if st.Name == "" {
		st.Name = j.id
	}
	if j.master != nil {
		st.Step = j.master.Health().Step
	}
	if n := j.run.Steps(); n > 0 {
		st.FinalLoss = j.run.Records[n-1].Loss
	}
	for i, a := range j.agents {
		st.Workers = append(st.Workers, JobWorkerView{Worker: i, Agent: a})
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	return st
}

// result returns a copy of the job's accumulated records and final params
// — the bit-equivalence tests' comparison handle.
func (j *job) result() (trace.Run, []float64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var run trace.Run
	run.Records = append([]trace.StepRecord(nil), j.run.Records...)
	params := append([]float64(nil), j.params...)
	return run, params
}
