// Scheduler state checkpoint/restore: the control plane persists its own
// job table (specs, states, progress counters) through the same
// checkpoint.Store machinery the masters use, so a plane restart recovers
// every job — terminal jobs come back as records, non-terminal jobs are
// re-admitted and resume from their per-job durable checkpoints.
package controlplane

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"isgc/internal/checkpoint"
	"isgc/internal/events"
)

// PlaneStateVersion guards the scheduler checkpoint schema.
const PlaneStateVersion = 1

// persistedJob is one job's durable record inside the scheduler state.
type persistedJob struct {
	ID           string   `json:"id"`
	Spec         JobSpec  `json:"spec"`
	State        JobState `json:"state"`
	N            int      `json:"n"`
	NextStep     int      `json:"next_step"`
	Replacements int      `json:"replacements"`
	Converged    bool     `json:"converged"`
	Error        string   `json:"error,omitempty"`
	SubmittedAt  int64    `json:"submitted_unix_nano"`
	FinishedAt   int64    `json:"finished_unix_nano,omitempty"`
}

// PlaneState is the scheduler's checkpoint payload.
type PlaneState struct {
	Version int            `json:"version"`
	Seq     int            `json:"seq"`
	Jobs    []persistedJob `json:"jobs"`
}

// planeStore wraps the scheduler's checkpoint.Store with a save counter
// (each save gets a fresh "step" so retention rolls correctly) and a lock
// serializing concurrent transition saves.
type planeStore struct {
	mu    sync.Mutex
	store *checkpoint.Store
	saves int
}

// openState prepares the scheduler's own store and per-job checkpoint
// roots under stateDir. Layout:
//
//	<stateDir>/plane/       scheduler state checkpoints
//	<stateDir>/jobs/<id>/   per-job master checkpoints (params, RNG, step)
func (s *scheduler) openState() error {
	if s.stateDir == "" {
		return nil
	}
	st, err := checkpoint.NewStore(filepath.Join(s.stateDir, "plane"), checkpoint.DefaultRetain)
	if err != nil {
		return err
	}
	s.state = &planeStore{store: st}
	return nil
}

// openJobStore gives a job its durable checkpoint directory (no-op without
// a state dir). Called with s.mu held on the submit path; the directory is
// created eagerly so a later disk problem surfaces at submission.
func (s *scheduler) openJobStore(j *job) error {
	if s.stateDir == "" {
		return nil
	}
	st, err := checkpoint.NewStore(filepath.Join(s.stateDir, "jobs", j.id), checkpoint.DefaultRetain)
	if err != nil {
		return err
	}
	j.store = st
	return nil
}

// saveState persists the current job table. Failures are logged, never
// fatal — the plane keeps scheduling even when its own durability is
// degraded, the same policy the master applies to run checkpoints.
func (s *scheduler) saveState() {
	if s.state == nil {
		return
	}
	st := PlaneState{Version: PlaneStateVersion}
	s.mu.Lock()
	st.Seq = s.seq
	for _, id := range s.order {
		j := s.jobs[id]
		j.mu.Lock()
		pj := persistedJob{
			ID:           j.id,
			Spec:         j.spec,
			State:        j.state,
			N:            j.n,
			NextStep:     j.nextStep,
			Replacements: j.replacements,
			Converged:    j.converged,
			Error:        j.errMsg,
			SubmittedAt:  j.submitted.UnixNano(),
		}
		if !j.finished.IsZero() {
			pj.FinishedAt = j.finished.UnixNano()
		}
		j.mu.Unlock()
		st.Jobs = append(st.Jobs, pj)
	}
	s.mu.Unlock()

	s.state.mu.Lock()
	s.state.saves++
	save := s.state.saves
	s.state.mu.Unlock()
	if _, err := s.state.store.Save(save, &st); err != nil {
		s.events.Error("plane.state_save_failed", "scheduler state checkpoint failed", events.NoStep,
			events.NoWorker, events.Fields{"error": err.Error()})
		return
	}
	s.events.Debug("plane.state_saved", "scheduler state checkpointed", events.NoStep, events.NoWorker,
		events.Fields{"jobs": len(st.Jobs), "save": save})
}

// restoreState rebuilds the job table from the newest scheduler
// checkpoint. Terminal jobs become queryable records; non-terminal jobs
// are re-admitted as pending with resume set, so their first generation
// restores from the job's durable checkpoint (or cold-starts when none was
// written yet). A job whose checkpoint says Completed is promoted straight
// to completed — its run finished durably even if the plane died before
// recording it.
func (s *scheduler) restoreState() error {
	if s.state == nil {
		return nil
	}
	var st PlaneState
	_, err := s.state.store.Latest(&st)
	switch {
	case errors.Is(err, checkpoint.ErrNoCheckpoint):
		return nil // fresh state dir
	case err != nil:
		return fmt.Errorf("controlplane: restore scheduler state: %w", err)
	}
	if st.Version != PlaneStateVersion {
		return fmt.Errorf("controlplane: scheduler state version %d, want %d", st.Version, PlaneStateVersion)
	}
	restored, resumed := 0, 0
	s.mu.Lock()
	s.seq = st.Seq
	for _, pj := range st.Jobs {
		j := &job{
			id:           pj.ID,
			spec:         pj.Spec,
			state:        pj.State,
			n:            pj.N,
			nextStep:     pj.NextStep,
			replacements: pj.Replacements,
			converged:    pj.Converged,
			errMsg:       pj.Error,
			evicted:      -1,
			submitted:    time.Unix(0, pj.SubmittedAt),
		}
		if pj.FinishedAt != 0 {
			j.finished = time.Unix(0, pj.FinishedAt)
		}
		if err := s.openJobStore(j); err != nil {
			s.mu.Unlock()
			return err
		}
		if !j.state.terminal() {
			j.state = JobPending
			j.resume = true
			j.n = pj.Spec.Scheme.N
			// The durable checkpoint knows better than the spec: a shrunk
			// placement must be re-admitted at its checkpointed size (the
			// master validates n against the checkpoint), and a completed
			// checkpoint needs no fleet at all.
			if j.store != nil {
				var cst checkpoint.State
				if _, err := j.store.Latest(&cst); err == nil {
					if cst.Completed {
						j.state = JobCompleted
						j.resume = false
						j.converged = cst.Step < j.spec.MaxSteps
						j.nextStep = cst.Step
						j.finished = time.Now()
					} else {
						j.n = cst.N
						j.nextStep = cst.Step
					}
				}
			}
			if j.state == JobPending {
				resumed++
			}
		}
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		restored++
	}
	s.mu.Unlock()
	s.updateActive()
	s.events.Info("plane.state_restored", "scheduler state recovered", events.NoStep, events.NoWorker,
		events.Fields{"jobs": restored, "resumed": resumed, "seq": st.Seq})
	return nil
}
