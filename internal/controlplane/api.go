// HTTP API for the control plane: job submission and lifecycle under
// /jobs, fleet membership under /fleet. The handler is plain http.Handler
// so it mounts equally under the admin server or a bare mux in tests.
//
//	POST   /jobs             submit a JobSpec, returns {"id": "job-001"}
//	GET    /jobs             list all jobs (submission order)
//	GET    /jobs/{id}        one job's status
//	DELETE /jobs/{id}        kill the job
//	POST   /jobs/{id}/drain  quiesce the job at a step boundary
//	GET    /fleet            per-agent assignment and liveness
package controlplane

import (
	"encoding/json"
	"net/http"
	"strings"
)

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func apiHandler(p *Plane) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/fleet", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeJSON(w, http.StatusMethodNotAllowed, apiError{"GET only"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"agents": p.FleetSnapshot()})
	})
	mux.HandleFunc("/jobs", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			writeJSON(w, http.StatusOK, map[string]any{"jobs": p.Jobs()})
		case http.MethodPost:
			var spec JobSpec
			if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
				writeJSON(w, http.StatusBadRequest, apiError{"bad job spec: " + err.Error()})
				return
			}
			id, err := p.Submit(spec)
			if err != nil {
				writeJSON(w, http.StatusBadRequest, apiError{err.Error()})
				return
			}
			writeJSON(w, http.StatusCreated, map[string]string{"id": id})
		default:
			writeJSON(w, http.StatusMethodNotAllowed, apiError{"GET or POST only"})
		}
	})
	mux.HandleFunc("/jobs/", func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/jobs/")
		id, verb, _ := strings.Cut(rest, "/")
		if id == "" {
			writeJSON(w, http.StatusNotFound, apiError{"missing job id"})
			return
		}
		switch {
		case verb == "" && r.Method == http.MethodGet:
			st, ok := p.Job(id)
			if !ok {
				writeJSON(w, http.StatusNotFound, apiError{"no job " + id})
				return
			}
			writeJSON(w, http.StatusOK, st)
		case verb == "" && r.Method == http.MethodDelete:
			if err := p.Kill(id); err != nil {
				code := http.StatusConflict
				if _, ok := p.Job(id); !ok {
					code = http.StatusNotFound
				}
				writeJSON(w, code, apiError{err.Error()})
				return
			}
			writeJSON(w, http.StatusOK, map[string]string{"id": id, "state": string(JobKilled)})
		case verb == "drain" && r.Method == http.MethodPost:
			if err := p.Drain(id); err != nil {
				code := http.StatusConflict
				if _, ok := p.Job(id); !ok {
					code = http.StatusNotFound
				}
				writeJSON(w, code, apiError{err.Error()})
				return
			}
			writeJSON(w, http.StatusOK, map[string]string{"id": id, "state": string(JobDrained)})
		default:
			writeJSON(w, http.StatusNotFound, apiError{"unknown route"})
		}
	})
	return mux
}
