package controlplane

import (
	"testing"
	"time"
)

// TestPlaneStateCheckpointRestore covers the scheduler's own durability: a
// plane stopped mid-run persists its job table and each job's run
// checkpoint; a second plane over the same state dir re-admits the job and
// completes it from where the first left off.
func TestPlaneStateCheckpointRestore(t *testing.T) {
	dir := t.TempDir()

	spec := elasticSpec() // slow enough to stop mid-run
	spec.CheckpointEvery = 5

	p1, err := New(Config{FleetAddr: "127.0.0.1:0", StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := p1.Start(); err != nil {
		t.Fatal(err)
	}
	agents1 := startAgents(t, p1, 3)
	waitForIdle(t, p1, 3)
	id, err := p1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitForStep(t, p1, id, 8)
	p1.Stop() // quiesce at a step boundary, checkpoint everything
	stopAgents(agents1)

	midStatus := mustJob(t, p1, id)
	if midStatus.State.terminal() {
		t.Fatalf("shutdown must leave the job resumable, got %s", midStatus.State)
	}

	// Second plane life: restore over the same state dir with a fresh
	// fleet; the job re-admits and runs to completion.
	p2, err := New(Config{FleetAddr: "127.0.0.1:0", StateDir: dir, Restore: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.Start(); err != nil {
		t.Fatal(err)
	}
	defer p2.Stop()
	restored := mustJob(t, p2, id)
	if restored.State != JobPending {
		t.Fatalf("restored job is %s, want pending", restored.State)
	}
	agents2 := startAgents(t, p2, 3)
	defer stopAgents(agents2)
	st := waitForState(t, p2, id, JobCompleted)
	if st.Step != spec.MaxSteps {
		t.Fatalf("resumed job finished at step %d, want %d", st.Step, spec.MaxSteps)
	}
	run, _, _ := p2.JobResult(id)
	if n := run.Steps(); n == 0 || n >= spec.MaxSteps {
		t.Fatalf("second life recorded %d steps; the restore must resume mid-run, not restart", n)
	}
	if first := run.Records[0].Step; first == 0 {
		t.Fatal("second life started at step 0; it must resume from the checkpoint")
	}

	// New submissions on the restored plane continue the id sequence
	// instead of colliding with the restored job.
	id2, err := p2.Submit(steadySpec())
	if err != nil {
		t.Fatal(err)
	}
	if id2 == id {
		t.Fatalf("restored plane reissued job id %s", id2)
	}
	waitForState(t, p2, id2, JobCompleted)
}

// TestRestoredTerminalJobsAreRecords: terminal jobs come back queryable
// but are never re-admitted.
func TestRestoredTerminalJobsAreRecords(t *testing.T) {
	dir := t.TempDir()
	p1, err := New(Config{FleetAddr: "127.0.0.1:0", StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := p1.Start(); err != nil {
		t.Fatal(err)
	}
	agents := startAgents(t, p1, 3)
	waitForIdle(t, p1, 3)
	id, err := p1.Submit(steadySpec())
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, p1, id, JobCompleted)
	p1.Stop()
	stopAgents(agents)

	p2, err := New(Config{FleetAddr: "127.0.0.1:0", StateDir: dir, Restore: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.Start(); err != nil {
		t.Fatal(err)
	}
	defer p2.Stop()
	st := mustJob(t, p2, id)
	if st.State != JobCompleted {
		t.Fatalf("restored completed job is %s", st.State)
	}
	// No fleet attached: give the admission loop a moment to (wrongly) try
	// to run it, then confirm it is still a record.
	time.Sleep(100 * time.Millisecond)
	if st := mustJob(t, p2, id); st.State != JobCompleted {
		t.Fatalf("restored completed job was re-admitted into %s", st.State)
	}
}

// startAgents/stopAgents are the non-Cleanup variants for tests that cycle
// multiple plane lives in one test body.
func startAgents(t *testing.T, p *Plane, n int) []*Agent {
	t.Helper()
	agents := make([]*Agent, n)
	for i := range agents {
		a, err := NewAgent(AgentConfig{FleetAddr: p.FleetAddr(), Name: agentName(i)})
		if err != nil {
			t.Fatal(err)
		}
		agents[i] = a
		go func() { _ = a.Run() }()
	}
	return agents
}

func stopAgents(agents []*Agent) {
	for _, a := range agents {
		a.Stop()
	}
}

func agentName(i int) string { return string(rune('a'+i)) + "-agent" }

func mustJob(t *testing.T, p *Plane, id string) JobStatus {
	t.Helper()
	st, ok := p.Job(id)
	if !ok {
		t.Fatalf("job %s is unknown", id)
	}
	return st
}
