package controlplane

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestJobsAPI covers the HTTP surface: submit, list, get, kill, drain,
// fleet, and the error paths (bad spec, unknown id, double kill).
func TestJobsAPI(t *testing.T) {
	p, _ := startPlane(t, Config{}, 1) // one agent: submitted jobs stay pending
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	post := func(path, body string) (*http.Response, map[string]any) {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&out)
		return resp, out
	}

	// Bad spec: scheme that cannot build.
	resp, out := post("/jobs", `{"scheme":{"scheme":"fr","n":4,"c":3}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec returned %d (%v), want 400", resp.StatusCode, out)
	}
	// Malformed JSON.
	resp, _ = post("/jobs", `{not json`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body returned %d, want 400", resp.StatusCode)
	}

	// Valid submission.
	resp, out = post("/jobs", `{"name":"via-api","scheme":{"scheme":"cr","n":3,"c":2},"max_steps":10}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit returned %d (%v), want 201", resp.StatusCode, out)
	}
	id, _ := out["id"].(string)
	if id == "" {
		t.Fatalf("submit returned no id: %v", out)
	}

	// List and get agree.
	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	getJSON(t, srv.URL+"/jobs", &list)
	if len(list.Jobs) != 1 || list.Jobs[0].ID != id || list.Jobs[0].Name != "via-api" {
		t.Fatalf("GET /jobs = %+v", list.Jobs)
	}
	var one JobStatus
	getJSON(t, srv.URL+"/jobs/"+id, &one)
	if one.ID != id || one.State != JobPending || one.MaxSteps != 10 {
		t.Fatalf("GET /jobs/%s = %+v", id, one)
	}

	// Unknown id is 404.
	if resp, err := http.Get(srv.URL + "/jobs/job-999"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job returned %v %v, want 404", resp.StatusCode, err)
	}

	// Fleet snapshot.
	var fleet struct {
		Agents []AgentView `json:"agents"`
	}
	getJSON(t, srv.URL+"/fleet", &fleet)
	if len(fleet.Agents) != 1 || !fleet.Agents[0].Alive {
		t.Fatalf("GET /fleet = %+v", fleet.Agents)
	}

	// Kill via DELETE; a second kill conflicts.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE returned %v %v, want 200", resp.StatusCode, err)
	}
	resp.Body.Close()
	resp, err = http.DefaultClient.Do(req.Clone(req.Context()))
	if err != nil || resp.StatusCode != http.StatusConflict {
		t.Fatalf("second DELETE returned %v %v, want 409", resp.StatusCode, err)
	}
	resp.Body.Close()

	// Drain of a terminal job conflicts too.
	resp, _ = post("/jobs/"+id+"/drain", "")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("drain of killed job returned %d, want 409", resp.StatusCode)
	}
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s returned %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}
