package controlplane

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"isgc/internal/cliconfig"
	"isgc/internal/trace"
)

// startPlane boots a plane with nAgents fleet agents (named w-0..w-N,
// which sorts into a deterministic admission order) and registers cleanup.
func startPlane(t *testing.T, cfg Config, nAgents int) (*Plane, map[string]*Agent) {
	t.Helper()
	if cfg.FleetAddr == "" {
		cfg.FleetAddr = "127.0.0.1:0"
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Stop)
	agents := make(map[string]*Agent, nAgents)
	var wg sync.WaitGroup
	for i := 0; i < nAgents; i++ {
		name := fmt.Sprintf("w-%d", i)
		a, err := NewAgent(AgentConfig{FleetAddr: p.FleetAddr(), Name: name})
		if err != nil {
			t.Fatal(err)
		}
		agents[name] = a
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = a.Run() // killed agents exit with an error by design
		}()
	}
	t.Cleanup(func() {
		for _, a := range agents {
			a.Stop()
		}
		wg.Wait()
	})
	// All agents registered before any submission, so admission order (and
	// with it the worker-id ↔ agent mapping) is deterministic.
	waitForIdle(t, p, nAgents)
	return p, agents
}

// waitForIdle polls until the fleet has at least n alive idle agents.
func waitForIdle(t *testing.T, p *Plane, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		idle := 0
		for _, a := range p.FleetSnapshot() {
			if a.Alive && a.JobID == "" {
				idle++
			}
		}
		if idle >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never reached %d idle agents (have %d)", n, idle)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitForState polls until the job reaches the wanted state.
func waitForState(t *testing.T, p *Plane, id string, want JobState) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, ok := p.Job(id)
		if ok && st.State == want {
			return st
		}
		if ok && st.State.terminal() && st.State != want {
			t.Fatalf("job %s ended %s (error %q), want %s", id, st.State, st.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached %s (at %s)", id, want, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitForStep polls until the job's live step reaches target.
func waitForStep(t *testing.T, p *Plane, id string, target int) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, _ := p.Job(id)
		if st.Step >= target && st.State == JobRunning {
			return
		}
		if st.State.terminal() {
			t.Fatalf("job %s ended %s before reaching step %d", id, st.State, target)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached step %d (at %d, state %s)", id, target, st.Step, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// zeroElapsed strips the wall-clock field records legitimately disagree on
// between runs.
func zeroElapsed(recs []trace.StepRecord) []trace.StepRecord {
	out := append([]trace.StepRecord(nil), recs...)
	for i := range out {
		out[i].Elapsed = 0
	}
	return out
}

// soloBaseline runs spec alone on its own plane and returns its records
// and final params — the comparison target for the isolation tests.
func soloBaseline(t *testing.T, spec JobSpec) (trace.Run, []float64) {
	t.Helper()
	p, _ := startPlane(t, Config{}, spec.Scheme.N)
	id, err := p.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, p, id, JobCompleted)
	run, params, ok := p.JobResult(id)
	if !ok {
		t.Fatalf("no result for %s", id)
	}
	return run, params
}

// steadySpec is the deterministic job the isolation tests bit-compare: no
// delays, sequential loss eval, full gather.
func steadySpec() JobSpec {
	return JobSpec{
		Name:       "steady",
		Scheme:     cliconfig.SchemeSpec{Scheme: "cr", N: 3, C: 2},
		Data:       cliconfig.DefaultData(42),
		MaxSteps:   40,
		ComputePar: 1,
	}
}

// elasticSpec is the job the fault drills disturb: generation-0 delays
// keep it running long enough for a permanent eviction to land mid-run,
// and tight liveness windows make the eviction fast.
func elasticSpec() JobSpec {
	spec := JobSpec{
		Name:            "elastic",
		Scheme:          cliconfig.SchemeSpec{Scheme: "cr", N: 3, C: 2},
		Data:            cliconfig.DefaultData(7),
		MaxSteps:        60,
		ComputePar:      1,
		LivenessTimeout: 200 * time.Millisecond,
		PermanentAfter:  400 * time.Millisecond,
	}
	for i := 0; i < 3; i++ {
		spec.Faults = append(spec.Faults, WorkerFault{Worker: i, CrashAtStep: -1, Delay: 20 * time.Millisecond})
	}
	return spec
}

func TestFleetAgentLifecycle(t *testing.T) {
	p, agents := startPlane(t, Config{}, 3)
	snap := p.FleetSnapshot()
	if len(snap) != 3 {
		t.Fatalf("fleet snapshot has %d agents, want 3", len(snap))
	}
	for _, a := range snap {
		if !a.Alive || a.JobID != "" {
			t.Fatalf("agent %s should be alive and idle: %+v", a.Name, a)
		}
	}
	// A stopped agent leaves the pool.
	agents["w-1"].Stop()
	deadline := time.Now().Add(10 * time.Second)
	for {
		alive := 0
		for _, a := range p.FleetSnapshot() {
			if a.Alive {
				alive++
			}
		}
		if alive == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("fleet never noticed the stopped agent")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSingleJobCompletes(t *testing.T) {
	p, _ := startPlane(t, Config{}, 3)
	id, err := p.Submit(steadySpec())
	if err != nil {
		t.Fatal(err)
	}
	st := waitForState(t, p, id, JobCompleted)
	if st.Step != 40 || st.Generation != 0 || st.Replacements != 0 {
		t.Fatalf("unexpected final status: %+v", st)
	}
	run, params, _ := p.JobResult(id)
	if run.Steps() != 40 {
		t.Fatalf("job recorded %d steps, want 40", run.Steps())
	}
	if len(params) == 0 {
		t.Fatal("job returned no final params")
	}
	// The pool is whole again after completion.
	waitForIdle(t, p, 3)
}

// TestJobQueuesUntilFleetFits covers admission: a job wider than the pool
// waits in pending, and is admitted as soon as enough agents join.
func TestJobQueuesUntilFleetFits(t *testing.T) {
	p, _ := startPlane(t, Config{}, 2)
	spec := steadySpec() // wants 3 workers
	id, err := p.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	if st, _ := p.Job(id); st.State != JobPending {
		t.Fatalf("job with too-small fleet is %s, want pending", st.State)
	}
	// The third agent arrives; the job must admit and complete.
	a, err := NewAgent(AgentConfig{FleetAddr: p.FleetAddr(), Name: "w-late"})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); _ = a.Run() }()
	t.Cleanup(func() { a.Stop(); <-done })
	waitForState(t, p, id, JobCompleted)
}

// TestMultiJobIsolationWithCrash is the isolation satellite: two jobs with
// different data share one fleet, one worker of the second job crashes
// permanently mid-run (triggering a live re-placement), and the first
// job's records and params stay bit-identical to a solo run of the same
// spec on a quiet plane.
func TestMultiJobIsolationWithCrash(t *testing.T) {
	soloRun, soloParams := soloBaseline(t, steadySpec())

	p, _ := startPlane(t, Config{}, 6)
	idA, err := p.Submit(steadySpec())
	if err != nil {
		t.Fatal(err)
	}
	crashed := elasticSpec()
	crashed.Faults[2].CrashAtStep = 5
	idB, err := p.Submit(crashed)
	if err != nil {
		t.Fatal(err)
	}

	stA := waitForState(t, p, idA, JobCompleted)
	stB := waitForState(t, p, idB, JobCompleted)
	if stB.Replacements == 0 || stB.Generation == 0 {
		t.Fatalf("crashed job never re-placed: %+v", stB)
	}
	if stA.Replacements != 0 || stA.Generation != 0 {
		t.Fatalf("steady job was disturbed by the other job's crash: %+v", stA)
	}

	runA, paramsA, _ := p.JobResult(idA)
	if !reflect.DeepEqual(zeroElapsed(runA.Records), zeroElapsed(soloRun.Records)) {
		t.Fatal("steady job's records diverged from its solo baseline")
	}
	if !reflect.DeepEqual(paramsA, soloParams) {
		t.Fatal("steady job's final params diverged from its solo baseline")
	}
	runB, _, _ := p.JobResult(idB)
	if runB.Steps() != 60 {
		t.Fatalf("re-placed job recorded %d steps, want 60 across generations", runB.Steps())
	}
}

// TestDrainReturnsAgentsToPool covers the drain path: the job quiesces at
// a step boundary, ends terminal-drained, and its agents go back to idle.
func TestDrainReturnsAgentsToPool(t *testing.T) {
	p, _ := startPlane(t, Config{}, 3)
	id, err := p.Submit(elasticSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitForStep(t, p, id, 5)
	if err := p.Drain(id); err != nil {
		t.Fatal(err)
	}
	st := waitForState(t, p, id, JobDrained)
	if st.Step >= 60 {
		t.Fatalf("drain landed at step %d; it must quiesce mid-run", st.Step)
	}
	waitForIdle(t, p, 3)
	// A second job reuses the drained job's agents.
	id2, err := p.Submit(steadySpec())
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, p, id2, JobCompleted)
}

// TestKillPendingJob covers the trivial terminate path: a pending job is
// killed without ever touching the fleet.
func TestKillPendingJob(t *testing.T) {
	p, _ := startPlane(t, Config{}, 1) // too small for the spec: stays pending
	id, err := p.Submit(steadySpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Kill(id); err != nil {
		t.Fatal(err)
	}
	if st, _ := p.Job(id); st.State != JobKilled {
		t.Fatalf("killed pending job is %s", st.State)
	}
	if err := p.Kill(id); err == nil {
		t.Fatal("killing a terminal job must error")
	}
}
