// Package controlplane turns the one-run-per-process master into an
// elastic multi-job control plane: a fleet manager that pools worker
// agents, a job scheduler that admits many concurrent gradient-coding jobs
// onto that shared fleet, and live re-placement — when a worker is
// permanently evicted mid-run, the affected job is quiesced at a step
// boundary, a new placement is derived over the surviving + idle agents,
// and the job resumes warm from in-memory parameters (bit-equivalent to a
// checkpoint restore).
//
// The plane is deliberately layered on the existing primitives rather than
// replacing them: each job generation is an ordinary cluster.Master on an
// ephemeral port, each fleet agent wraps an ordinary cluster.Worker, and
// durability reuses checkpoint.Store — for per-job run state and for the
// scheduler's own job table.
package controlplane

import (
	"fmt"
	"net/http"
	"time"

	"isgc/internal/events"
	"isgc/internal/metrics"
	"isgc/internal/obs"
	"isgc/internal/trace"
)

// Config configures a Plane.
type Config struct {
	// FleetAddr is the fleet listener address ("127.0.0.1:0" for tests).
	FleetAddr string
	// StateDir, when non-empty, enables durability: per-job checkpoints
	// under <StateDir>/jobs/<id> and scheduler-state checkpoints under
	// <StateDir>/plane.
	StateDir string
	// Restore re-admits jobs from the newest scheduler checkpoint in
	// StateDir before accepting new work.
	Restore bool
	// AgentTimeout declares a silent agent dead (0 → 5s).
	AgentTimeout time.Duration
	// Registry, when non-nil, receives the plane's metric families.
	Registry *metrics.Registry
	// Events, when non-nil, receives the plane's structured event stream.
	Events *events.Log
	// Obs, when non-nil, federates every job master's metrics into the
	// plane-level time-series store: each generation's registry is
	// registered under the job's id with a {job: <id>} label, so
	// /api/timeseries answers fleet-wide and per-job queries from one
	// place. Counter resets across generations are handled by the store's
	// rate clamp.
	Obs *obs.Store
}

// Plane is the assembled control plane: fleet manager + job scheduler.
type Plane struct {
	cfg   Config
	fl    *fleet
	sched *scheduler
}

// New assembles a plane; nothing listens until Start.
func New(cfg Config) (*Plane, error) {
	if cfg.FleetAddr == "" {
		return nil, fmt.Errorf("controlplane: need a fleet address")
	}
	if cfg.Restore && cfg.StateDir == "" {
		return nil, fmt.Errorf("controlplane: restore needs a state dir")
	}
	pm := NewPlaneMetrics(cfg.Registry)
	fl := newFleet(cfg.AgentTimeout, cfg.Events, pm)
	sched := newScheduler(fl, cfg.Events, pm, cfg.StateDir, cfg.Obs)
	return &Plane{cfg: cfg, fl: fl, sched: sched}, nil
}

// Start binds the fleet listener, restores scheduler state when asked, and
// begins admitting jobs.
func (p *Plane) Start() error {
	if err := p.sched.openState(); err != nil {
		return err
	}
	if p.cfg.Restore {
		if err := p.sched.restoreState(); err != nil {
			return err
		}
	}
	if err := p.fl.start(p.cfg.FleetAddr); err != nil {
		return err
	}
	p.cfg.Events.Info("plane.started", "control plane serving", events.NoStep, events.NoWorker,
		events.Fields{"fleet": p.fl.addr(), "restore": p.cfg.Restore})
	p.sched.start()
	return nil
}

// Stop quiesces every running job at a step boundary, checkpoints the
// scheduler state, and tears down the fleet. Non-terminal jobs stay
// resumable: a new plane with Restore over the same StateDir picks them
// up.
func (p *Plane) Stop() {
	p.sched.stop()
	p.fl.close()
	p.cfg.Events.Info("plane.stopped", "control plane shut down", events.NoStep, events.NoWorker, nil)
}

// FleetAddr is the bound fleet listener address (valid after Start).
func (p *Plane) FleetAddr() string { return p.fl.addr() }

// Submit enqueues a job for admission and returns its id.
func (p *Plane) Submit(spec JobSpec) (string, error) { return p.sched.Submit(spec) }

// Jobs lists every job's status in submission order.
func (p *Plane) Jobs() []JobStatus { return p.sched.Jobs() }

// Job returns one job's status.
func (p *Plane) Job(id string) (JobStatus, bool) { return p.sched.Job(id) }

// JobResult returns a job's accumulated step records and final parameters.
func (p *Plane) JobResult(id string) (trace.Run, []float64, bool) { return p.sched.JobResult(id) }

// Kill terminates a job, discarding in-flight progress past the last
// durable checkpoint.
func (p *Plane) Kill(id string) error { return p.sched.Kill(id) }

// Drain quiesces a job at a step boundary and returns its agents to the
// pool; with a state dir the job's final checkpoint stays resumable.
func (p *Plane) Drain(id string) error { return p.sched.Drain(id) }

// FleetSnapshot is the per-agent view (assignment, liveness) for /fleet.
func (p *Plane) FleetSnapshot() []AgentView { return p.fl.snapshot() }

// Handler returns the plane's HTTP API (the /jobs and /fleet routes),
// ready to mount under an admin server.
func (p *Plane) Handler() http.Handler { return apiHandler(p) }
