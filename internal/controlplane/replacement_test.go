package controlplane

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
)

// TestLiveReplacementDrill is the PR's acceptance drill: two concurrent
// jobs on a six-agent fleet, one of the second job's agents is killed
// abruptly (no farewell on any connection), the plane re-derives that
// job's placement live, both jobs complete, the unaffected job is
// bit-identical to its solo baseline, and GET /jobs reflects the
// worker ↔ agent assignments throughout.
func TestLiveReplacementDrill(t *testing.T) {
	soloRun, soloParams := soloBaseline(t, steadySpec())

	p, agents := startPlane(t, Config{}, 6)
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	getJobs := func() []JobStatus {
		t.Helper()
		resp, err := http.Get(srv.URL + "/jobs")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out struct {
			Jobs []JobStatus `json:"jobs"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out.Jobs
	}

	idA, err := p.Submit(steadySpec())
	if err != nil {
		t.Fatal(err)
	}
	idB, err := p.Submit(elasticSpec())
	if err != nil {
		t.Fatal(err)
	}

	// Let B make progress, then read its assignment over the API and kill
	// one of its agents abruptly.
	waitForStep(t, p, idB, 5)
	var victim string
	var preWorkers int
	for _, j := range getJobs() {
		if j.ID != idB {
			continue
		}
		preWorkers = len(j.Workers)
		if preWorkers > 0 {
			victim = j.Workers[preWorkers-1].Agent
		}
	}
	if victim == "" || preWorkers != 3 {
		t.Fatalf("GET /jobs did not expose job %s's 3 assignments (got %d)", idB, preWorkers)
	}
	agents[victim].Kill()

	stB := waitForState(t, p, idB, JobCompleted)
	stA := waitForState(t, p, idA, JobCompleted)
	if stB.Replacements == 0 || stB.Generation == 0 {
		t.Fatalf("killed agent never triggered a re-placement: %+v", stB)
	}
	if stB.Step != 60 {
		t.Fatalf("re-placed job finished at step %d, want 60", stB.Step)
	}

	// The unaffected job matches its solo baseline bit for bit.
	if stA.Replacements != 0 {
		t.Fatalf("unaffected job was re-placed: %+v", stA)
	}
	runA, paramsA, _ := p.JobResult(idA)
	if !reflect.DeepEqual(zeroElapsed(runA.Records), zeroElapsed(soloRun.Records)) {
		t.Fatal("unaffected job's records diverged from its solo baseline")
	}
	if !reflect.DeepEqual(paramsA, soloParams) {
		t.Fatal("unaffected job's final params diverged from its solo baseline")
	}

	// The final API view: both jobs terminal, B's successor assignment no
	// longer includes the killed agent.
	for _, j := range getJobs() {
		switch j.ID {
		case idA, idB:
			if j.State != JobCompleted {
				t.Fatalf("GET /jobs shows %s as %s after completion", j.ID, j.State)
			}
		}
		if j.ID == idB {
			for _, w := range j.Workers {
				if w.Agent == victim {
					t.Fatalf("killed agent %s still appears in %s's assignment", victim, idB)
				}
			}
		}
	}
}

// TestReplacementShrinksWhenPoolIsTight: with no idle agents to backfill,
// the re-derived placement shrinks to the survivors and the job still
// completes.
func TestReplacementShrinksWhenPoolIsTight(t *testing.T) {
	p, agents := startPlane(t, Config{}, 3) // exactly the job's width, no spares
	id, err := p.Submit(elasticSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitForStep(t, p, id, 5)
	st, _ := p.Job(id)
	if len(st.Workers) != 3 {
		t.Fatalf("job has %d workers, want 3", len(st.Workers))
	}
	agents[st.Workers[2].Agent].Kill()

	final := waitForState(t, p, id, JobCompleted)
	if final.Replacements == 0 {
		t.Fatalf("kill never triggered a re-placement: %+v", final)
	}
	if final.N != 2 {
		t.Fatalf("successor placement n=%d, want 2 (survivors only)", final.N)
	}
	if final.Step != 60 {
		t.Fatalf("job finished at step %d, want 60", final.Step)
	}
}
