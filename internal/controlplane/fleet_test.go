package controlplane

import (
	"encoding/json"
	"net"
	"testing"
	"time"

	"isgc/internal/cliconfig"
)

// rawAgent speaks the fleet wire protocol by hand, so tests can control
// exactly which done (and which epoch) the fleet sees and when.
type rawAgent struct {
	t *testing.T
	c *fconn
}

func dialRawAgent(t *testing.T, fl *fleet, name string) *rawAgent {
	t.Helper()
	raw, err := net.Dial("tcp", fl.addr())
	if err != nil {
		t.Fatal(err)
	}
	c := newFconn(raw)
	t.Cleanup(c.close)
	if err := c.send(&fleetMsg{Kind: fleetHello, Name: name}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !fl.aliveAgent(name) {
		if time.Now().After(deadline) {
			t.Fatalf("agent %s never registered", name)
		}
		time.Sleep(2 * time.Millisecond)
	}
	return &rawAgent{t: t, c: c}
}

func (a *rawAgent) recvAssign() *Assignment {
	a.t.Helper()
	m, err := a.c.recv()
	if err != nil {
		a.t.Fatal(err)
	}
	if m.Kind != fleetAssign {
		a.t.Fatalf("got %q, want assign", m.Kind)
	}
	return m.Assign
}

func (a *rawAgent) sendDone(jobID, status string, epoch int) {
	a.t.Helper()
	if err := a.c.send(&fleetMsg{Kind: fleetDone, JobID: jobID, Status: status, Epoch: epoch}); err != nil {
		a.t.Fatal(err)
	}
}

// TestStaleDoneKeepsSuccessorBinding is the regression for the live
// re-placement race: a survivor gets its successor assignment pushed
// while the old worker is still winding down, and the old worker's late
// done must NOT mark the agent idle (or fire the scheduler callbacks) —
// only the successor's own done, carrying the newer epoch, frees it.
func TestStaleDoneKeepsSuccessorBinding(t *testing.T) {
	fl := newFleet(5*time.Second, nil, nil)
	doneCh := make(chan string, 4)
	fl.onDone = func(agent, jobID, status, errMsg string) { doneCh <- status }
	if err := fl.start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fl.close)

	a := dialRawAgent(t, fl, "raw-0")
	scheme := cliconfig.SchemeSpec{Scheme: "cr", N: 1, C: 1}

	// First assignment, then a superseding one for the SAME job and worker
	// id — the shape a survivor re-assignment takes.
	if err := fl.assign("raw-0", &Assignment{JobID: "job-1", WorkerID: 0, Scheme: scheme}); err != nil {
		t.Fatal(err)
	}
	first := a.recvAssign()
	if err := fl.assign("raw-0", &Assignment{JobID: "job-1", WorkerID: 0, Scheme: scheme}); err != nil {
		t.Fatal(err)
	}
	second := a.recvAssign()
	if second.Epoch <= first.Epoch {
		t.Fatalf("epochs not monotonic: first %d, second %d", first.Epoch, second.Epoch)
	}

	// The superseded worker's done arrives AFTER the new binding, then the
	// successor's own done. The connection is processed in order, so the
	// first callback the fleet fires tells us whether the stale done leaked.
	a.sendDone("job-1", StatusStopped, first.Epoch)
	a.sendDone("job-1", StatusExited, second.Epoch)
	select {
	case status := <-doneCh:
		if status != StatusExited {
			t.Fatalf("stale done reached onDone (status %q); want only the successor's %q",
				status, StatusExited)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("successor done never reached onDone")
	}
	select {
	case status := <-doneCh:
		t.Fatalf("unexpected second onDone with status %q", status)
	case <-time.After(100 * time.Millisecond):
	}
	for _, v := range fl.snapshot() {
		if v.Name == "raw-0" && v.JobID != "" {
			t.Fatalf("agent still bound to %q after the current-epoch done", v.JobID)
		}
	}
}

// TestStaleDoneBindingSurvivesUntilCurrentDone pins the binding itself:
// after a stale done is processed the agent must still show as assigned.
func TestStaleDoneBindingSurvivesUntilCurrentDone(t *testing.T) {
	fl := newFleet(5*time.Second, nil, nil)
	if err := fl.start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fl.close)

	a := dialRawAgent(t, fl, "raw-1")
	scheme := cliconfig.SchemeSpec{Scheme: "cr", N: 1, C: 1}
	if err := fl.assign("raw-1", &Assignment{JobID: "job-A", WorkerID: 0, Scheme: scheme}); err != nil {
		t.Fatal(err)
	}
	first := a.recvAssign()
	if err := fl.assign("raw-1", &Assignment{JobID: "job-A", WorkerID: 0, Scheme: scheme}); err != nil {
		t.Fatal(err)
	}
	a.recvAssign()

	a.sendDone("job-A", StatusStopped, first.Epoch)
	// A ping after the stale done acts as a fence: once lastSeen moves, the
	// done has been processed by the same reader goroutine.
	before := time.Now()
	if err := a.c.send(&fleetMsg{Kind: fleetPing}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		var v AgentView
		for _, s := range fl.snapshot() {
			if s.Name == "raw-1" {
				v = s
			}
		}
		if v.LastSeenAgeSeconds < time.Since(before).Seconds() {
			if v.JobID != "job-A" {
				t.Fatalf("stale done cleared the binding: agent bound to %q, want job-A", v.JobID)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("fleet never processed the ping")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSubmitAfterStopRejected covers the shutdown race: once stop began,
// a submission must fail deterministically instead of parking a job in a
// table no admission loop will ever scan again.
func TestSubmitAfterStopRejected(t *testing.T) {
	p, _ := startPlane(t, Config{}, 0)
	p.Stop()
	if _, err := p.Submit(steadySpec()); err == nil {
		t.Fatal("Submit after Stop succeeded; want an error")
	}
}

// TestWorkerFaultJSONDefaults is the regression for delay-only faults: an
// omitted crash_at_step must decode as -1 (disabled), not as the zero
// value 0 ("crash at step 0").
func TestWorkerFaultJSONDefaults(t *testing.T) {
	cases := []struct {
		in   string
		want int
	}{
		{`{"worker":1,"delay":1000000}`, -1},
		{`{"worker":1}`, -1},
		{`{"worker":1,"crash_at_step":0}`, 0},
		{`{"worker":1,"crash_at_step":7}`, 7},
		{`{"worker":1,"crash_at_step":-1}`, -1},
	}
	for _, c := range cases {
		var f WorkerFault
		if err := json.Unmarshal([]byte(c.in), &f); err != nil {
			t.Fatalf("unmarshal %s: %v", c.in, err)
		}
		if f.CrashAtStep != c.want {
			t.Errorf("%s: CrashAtStep = %d, want %d", c.in, f.CrashAtStep, c.want)
		}
	}
	var spec JobSpec
	blob := `{"scheme":{"scheme":"cr","n":3,"c":2},"faults":[{"worker":0,"delay":1000000}]}`
	if err := json.Unmarshal([]byte(blob), &spec); err != nil {
		t.Fatal(err)
	}
	if got := spec.Faults[0].CrashAtStep; got != -1 {
		t.Fatalf("delay-only fault inside a JobSpec got CrashAtStep %d, want -1", got)
	}
}
