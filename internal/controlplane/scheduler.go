package controlplane

import (
	"encoding/gob"
	"fmt"
	"net"
	"sort"
	"time"

	"isgc/internal/cluster"
	"isgc/internal/engine"
	"isgc/internal/events"
	"isgc/internal/isgc"
	"isgc/internal/metrics"
	"isgc/internal/model"
	"isgc/internal/obs"
	"isgc/internal/trace"

	"sync"
)

// tombstoneTTL is how long the plane answers a quiesced job's old master
// address with MsgJobGone, so workers outside the plane's agent pool stop
// burning their redial budget instead of spinning against a dead port.
const tombstoneTTL = 30 * time.Second

// scheduler owns the job table and drives every job's lifecycle: admission
// when enough idle agents exist, live re-placement on permanent eviction,
// operator drain/kill, and checkpoint/restore of its own state.
type scheduler struct {
	fl       *fleet
	events   *events.Log
	metrics  *PlaneMetrics
	stateDir string
	obs      *obs.Store
	state    *planeStore

	mu    sync.Mutex
	jobs  map[string]*job
	order []string
	seq   int
	// stopping rejects submissions once shutdown began. It shares mu with
	// the job table, so a Submit either lands before stop's snapshot (and
	// is quiesced and persisted like any other job) or fails — never a
	// silent forever-pending job.
	stopping bool

	pokeCh   chan struct{}
	quit     chan struct{}
	stopOnce sync.Once
	loopWG   sync.WaitGroup // admission loop + tombstones
	jobWG    sync.WaitGroup // one runJob goroutine per admitted job
}

func newScheduler(fl *fleet, ev *events.Log, pm *PlaneMetrics, stateDir string, store *obs.Store) *scheduler {
	s := &scheduler{
		fl:       fl,
		events:   ev,
		metrics:  pm,
		stateDir: stateDir,
		obs:      store,
		jobs:     make(map[string]*job),
		pokeCh:   make(chan struct{}, 1),
		quit:     make(chan struct{}),
	}
	fl.onDone = s.agentDone
	fl.onChange = s.poke
	return s
}

// start launches the admission loop (after any restore).
func (s *scheduler) start() {
	s.loopWG.Add(1)
	go s.admissionLoop()
	s.poke()
}

// stop quiesces every running job at a step boundary (state preserved for
// a restore), stops the loops, and saves the scheduler's state.
func (s *scheduler) stop() {
	s.mu.Lock()
	s.stopping = true
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	s.stopOnce.Do(func() { close(s.quit) })
	for _, j := range jobs {
		j.mu.Lock()
		var m *cluster.Master
		if !j.state.terminal() && j.stopReason == stopNone {
			j.stopReason = stopShutdown
			m = j.master
		}
		j.mu.Unlock()
		if m != nil {
			m.Stop()
		}
	}
	s.jobWG.Wait()
	s.loopWG.Wait()
	s.saveState()
}

// poke nudges the admission loop; extras are dropped (it rescans anyway).
func (s *scheduler) poke() {
	select {
	case s.pokeCh <- struct{}{}:
	default:
	}
}

// agentDone is the fleet's completion callback: the pool grew, so pending
// jobs may now fit.
func (s *scheduler) agentDone(agent, jobID, status, errMsg string) {
	if status == StatusError && errMsg != "" {
		s.events.Warn("plane.agent_run_error", "agent reported a failed worker run", events.NoStep,
			events.NoWorker, events.Fields{"agent": agent, "job": jobID, "error": errMsg})
	}
}

// Submit validates and enqueues a job; admission happens asynchronously as
// soon as enough idle agents exist.
func (s *scheduler) Submit(spec JobSpec) (string, error) {
	if err := spec.Normalize(); err != nil {
		return "", err
	}
	s.mu.Lock()
	if s.stopping {
		s.mu.Unlock()
		return "", fmt.Errorf("controlplane: scheduler is shut down")
	}
	s.seq++
	id := fmt.Sprintf("job-%03d", s.seq)
	j := &job{id: id, spec: spec, state: JobPending, n: spec.Scheme.N, evicted: -1,
		submitted: time.Now()}
	if err := s.openJobStore(j); err != nil {
		s.mu.Unlock()
		return "", err
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.mu.Unlock()

	s.metrics.markSubmitted()
	s.updateActive()
	s.events.Info("plane.job_submitted", "job accepted", events.NoStep, events.NoWorker,
		events.Fields{"job": id, "name": spec.Name, "scheme": spec.Scheme.Scheme,
			"n": spec.Scheme.N, "c": spec.Scheme.C, "steps": spec.MaxSteps})
	s.saveState()
	s.poke()
	return id, nil
}

// Job returns one job's status; ok is false for an unknown id.
func (s *scheduler) Job(id string) (JobStatus, bool) {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		return JobStatus{}, false
	}
	return j.status(), true
}

// Jobs returns every job's status in submission order.
func (s *scheduler) Jobs() []JobStatus {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make([]JobStatus, 0, len(ids))
	for _, id := range ids {
		if st, ok := s.Job(id); ok {
			out = append(out, st)
		}
	}
	return out
}

// JobResult returns a job's accumulated step records and final params —
// the handle the bit-equivalence tests compare against a solo baseline.
func (s *scheduler) JobResult(id string) (trace.Run, []float64, bool) {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		return trace.Run{}, nil, false
	}
	run, params := j.result()
	return run, params, true
}

// Kill terminates a job: a pending job is simply marked killed, a running
// one is quiesced and its agents released. The job's records stay
// queryable; its durable checkpoints are left in place.
func (s *scheduler) Kill(id string) error { return s.terminate(id, stopKill, JobKilled) }

// Drain gracefully stops a job at a step boundary, writes its final
// resumable checkpoint (when the plane has a state dir), and returns its
// agents to the pool. A drained job is terminal for this plane life.
func (s *scheduler) Drain(id string) error { return s.terminate(id, stopDrain, JobDrained) }

func (s *scheduler) terminate(id string, reason stopReason, target JobState) error {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		return fmt.Errorf("controlplane: no job %q", id)
	}
	j.mu.Lock()
	switch {
	case j.state.terminal():
		j.mu.Unlock()
		return fmt.Errorf("controlplane: job %s is already %s", id, j.state)
	case j.state == JobPending:
		j.state = target
		j.finished = time.Now()
		j.mu.Unlock()
		s.finishEvents(id, target, "")
		return nil
	case j.stopReason != stopNone:
		j.mu.Unlock()
		return fmt.Errorf("controlplane: job %s is mid-transition", id)
	}
	j.stopReason = reason
	m := j.master
	j.mu.Unlock()
	if m != nil {
		m.Stop() // runJob observes the reason and finishes the transition
	}
	return nil
}

// finishEvents records a terminal transition's event/metric/state fallout.
func (s *scheduler) finishEvents(id string, state JobState, errMsg string) {
	s.metrics.markTerminal(state)
	s.updateActive()
	fields := events.Fields{"job": id, "state": string(state)}
	if errMsg != "" {
		fields["error"] = errMsg
	}
	if state == JobFailed {
		s.events.Error("plane.job_finished", "job reached a terminal state", events.NoStep, events.NoWorker, fields)
	} else {
		s.events.Info("plane.job_finished", "job reached a terminal state", events.NoStep, events.NoWorker, fields)
	}
	s.saveState()
	s.poke()
}

// updateActive refreshes the non-terminal-jobs gauge.
func (s *scheduler) updateActive() {
	s.mu.Lock()
	active := 0
	for _, j := range s.jobs {
		j.mu.Lock()
		if !j.state.terminal() {
			active++
		}
		j.mu.Unlock()
	}
	s.mu.Unlock()
	s.metrics.setActive(active)
}

// admissionLoop retries admission whenever the pool changes or a job
// arrives; the ticker is a safety net against lost pokes.
func (s *scheduler) admissionLoop() {
	defer s.loopWG.Done()
	t := time.NewTicker(500 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-s.quit:
			return
		case <-s.pokeCh:
		case <-t.C:
		}
		s.admitPending()
	}
}

// admitPending starts every pending job the idle pool can hold, in
// submission order (no backfilling past a job that does not fit would be
// unfair the other way; FIFO with skip keeps small jobs flowing while a
// big one waits).
func (s *scheduler) admitPending() {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	for _, id := range ids {
		s.mu.Lock()
		j := s.jobs[id]
		s.mu.Unlock()
		if j == nil {
			continue
		}
		j.mu.Lock()
		pending := j.state == JobPending
		need := j.n // spec N, or the checkpointed N for a resumed job
		j.mu.Unlock()
		if !pending {
			continue
		}
		idle := s.fl.idle()
		if len(idle) < need {
			continue
		}
		agents := idle[:need]
		if !s.claim(agents, id) {
			continue // racing pool change; the next poke retries
		}
		j.mu.Lock()
		if j.state != JobPending { // raced a kill
			j.mu.Unlock()
			// No assignment was pushed yet, so there is no worker to
			// release and no done coming — drop the claims directly.
			for _, a := range agents {
				s.fl.unclaim(a, id)
			}
			continue
		}
		j.state = JobRunning
		j.started = time.Now()
		j.agents = append([]string(nil), agents...)
		j.mu.Unlock()
		s.events.Info("plane.job_admitted", "job admitted onto the fleet", events.NoStep, events.NoWorker,
			events.Fields{"job": id, "agents": agents})
		s.jobWG.Add(1)
		go s.runJob(j)
	}
}

// claim reserves the agents for a job before its master exists, so one
// admission pass cannot hand the same agent to two jobs.
func (s *scheduler) claim(agents []string, jobID string) bool {
	s.fl.mu.Lock()
	for _, name := range agents {
		a := s.fl.agents[name]
		if a == nil || !a.alive || a.jobID != "" {
			// Unwind the partial claim.
			for _, prev := range agents {
				if prev == name {
					break
				}
				if p := s.fl.agents[prev]; p != nil && p.jobID == jobID {
					p.jobID = ""
				}
			}
			s.fl.mu.Unlock()
			return false
		}
		// A claim opens a new binding epoch; the assign that follows bumps
		// it again and stamps the Assignment, so any done still in flight
		// for an older epoch cannot dissolve the claim.
		a.epoch++
		a.jobID = jobID
	}
	s.fl.mu.Unlock()
	s.fl.updateGauges()
	return true
}

// runJob drives one job through its generations: run a master, and on a
// re-placement quiesce hand the warm state to a successor with a freshly
// derived placement until the job reaches a terminal state.
func (s *scheduler) runJob(j *job) {
	defer s.jobWG.Done()
	first := true
	for {
		// A kill/drain/shutdown that landed between generations (master
		// nil, nothing to Stop) is honored before starting the next life.
		j.mu.Lock()
		early := j.stopReason
		if early == stopKill || early == stopDrain || early == stopShutdown {
			j.stopReason = stopNone
		}
		agentsNow := append([]string(nil), j.agents...)
		j.mu.Unlock()
		switch early {
		case stopShutdown:
			return
		case stopKill:
			s.finishJob(j, JobKilled, "", agentsNow)
			return
		case stopDrain:
			s.finishJob(j, JobDrained, "", agentsNow)
			return
		}

		res, runErr := s.runGeneration(j, first)
		first = false

		j.mu.Lock()
		reason := j.stopReason
		j.stopReason = stopNone
		j.master = nil
		if res != nil {
			j.run.Records = append(j.run.Records, res.Run.Records...)
			if len(res.Params) > 0 {
				j.params = append(j.params[:0], res.Params...)
			}
			if n := len(res.Run.Records); n > 0 {
				j.nextStep = res.Run.Records[n-1].Step + 1
			}
			j.converged = j.converged || res.Converged
		}
		agents := append([]string(nil), j.agents...)
		interrupted := res != nil && res.Interrupted
		j.mu.Unlock()
		s.metrics.setJobProgress(j.id, jobStep(j), len(agents))

		switch {
		case runErr != nil:
			s.finishJob(j, JobFailed, runErr.Error(), agents)
			return
		case !interrupted:
			s.finishJob(j, JobCompleted, "", agents)
			return
		}
		// Interrupted: the reason decides the next life.
		switch reason {
		case stopShutdown:
			return // state stays as-is; the checkpoint resumes it
		case stopKill:
			s.finishJob(j, JobKilled, "", agents)
			return
		case stopDrain:
			s.finishJob(j, JobDrained, "", agents)
			return
		}
		// Live re-placement: re-derive the placement over the surviving +
		// idle agents and hand the warm state to a successor master.
		next, err := s.replacementSet(j, agents)
		if err != nil {
			s.finishJob(j, JobFailed, err.Error(), agents)
			return
		}
		j.mu.Lock()
		j.gen++
		j.n = len(next)
		evicted := j.evicted
		j.evicted = -1
		prev := j.agents
		j.agents = next
		j.mu.Unlock()
		// Survivors are re-assigned directly; dropped agents are released.
		inNext := make(map[string]bool, len(next))
		for _, a := range next {
			inNext[a] = true
		}
		for _, a := range prev {
			if !inNext[a] && s.fl.aliveAgent(a) {
				s.fl.release(a, j.id)
			}
		}
		s.events.Info("plane.replacement_derived", "new placement derived after permanent eviction",
			events.NoStep, evicted, events.Fields{"job": j.id, "n": len(next), "agents": next,
				"was_n": len(prev)})
	}
}

// jobStep returns the job's absolute next step (live view).
func jobStep(j *job) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.nextStep
}

// finishJob moves a job to a terminal state, releases its agents, and —
// for quiesced (not completed) jobs — leaves a tombstone on the dead
// master's address so stray workers get MsgJobGone instead of a silent
// dead port.
func (s *scheduler) finishJob(j *job, state JobState, errMsg string, agents []string) {
	j.mu.Lock()
	j.state = state
	j.errMsg = errMsg
	j.finished = time.Now()
	tombstoneAddr := ""
	if state == JobKilled || state == JobDrained {
		tombstoneAddr = j.lastMasterAddr
	}
	j.mu.Unlock()
	for _, a := range agents {
		s.fl.release(a, j.id)
	}
	// Stop sampling the finished job; its recorded series stay queryable
	// until they age out of every window.
	s.obs.RemoveSource("job/" + j.id)
	if tombstoneAddr != "" {
		s.startTombstone(tombstoneAddr, j.id)
	}
	s.finishEvents(j.id, state, errMsg)
}

// runGeneration runs one master life of a job: build placement, strategy,
// and master; push the assignments; block until the run ends or is
// quiesced. firstRun gates the admission-latency observation and the
// generation-0 fault injection.
func (s *scheduler) runGeneration(j *job, firstRun bool) (*engine.Result, error) {
	j.mu.Lock()
	spec := j.spec
	gen := j.gen
	agents := append([]string(nil), j.agents...)
	warmParams := append([]float64(nil), j.params...)
	warmStep := j.nextStep
	hasRand, randSeed, randDraws := j.hasRand, j.randSeed, j.randDraws
	resume := j.resume
	j.resume = false
	replanAt := j.replanAt
	j.replanAt = time.Time{}
	j.mu.Unlock()

	n := len(agents)
	scheme := spec.Scheme
	scheme.N = n
	p, err := scheme.Build()
	if err != nil {
		return nil, fmt.Errorf("controlplane: job %s: placement n=%d: %w", j.id, n, err)
	}
	st, err := engine.NewISGC(isgc.New(p, spec.Data.Seed))
	if err != nil {
		return nil, err
	}
	if gen > 0 && hasRand {
		// Carry the decoder RNG position across the handoff: a successor
		// that preserves the fleet shape must draw exactly where the
		// previous life stopped, or fairness tie-breaks diverge.
		if rs, ok := st.(engine.RandStateful); ok {
			rs.RestoreRandState(randSeed, randDraws)
		}
	}
	data, err := spec.Data.BuildDataset()
	if err != nil {
		return nil, err
	}
	w := spec.W
	if w <= 0 || w > n {
		w = n
	}
	var warm *cluster.WarmState
	if gen > 0 {
		warm = &cluster.WarmState{Params: warmParams, StartStep: warmStep, Generation: gen}
	}
	// Federate this master life into the plane's time-series store: a
	// fresh registry per generation (GaugeFuncs bind to this master), the
	// same source id and {job} label across generations so the job keeps
	// one continuous set of series.
	var mm *cluster.MasterMetrics
	if s.obs != nil {
		jreg := metrics.NewRegistry()
		mm = cluster.NewMasterMetrics(jreg)
		s.obs.AddSource("job/"+j.id, jreg, map[string]string{"job": j.id})
	}
	m, err := cluster.NewMaster(cluster.MasterConfig{
		Metrics:         mm,
		Addr:            "127.0.0.1:0",
		Strategy:        st,
		Model:           model.SoftmaxRegression{Features: spec.Data.Features, Classes: spec.Data.Classes},
		Data:            data,
		LearningRate:    spec.LearningRate,
		W:               w,
		MaxSteps:        spec.MaxSteps,
		LossThreshold:   spec.LossThreshold,
		Seed:            spec.Data.Seed,
		StepTimeout:     spec.StepTimeout,
		LivenessTimeout: spec.LivenessTimeout,
		ComputePar:      spec.ComputePar,
		Wire:            spec.Wire,
		Checkpoint:      j.store,
		CheckpointEvery: spec.CheckpointEvery,
		Restore:         resume,
		Warm:            warm,
		PermanentAfter:  spec.PermanentAfter,
		OnPermanentEviction: func(worker, workerGen int) {
			s.requestReplacement(j, worker, workerGen)
		},
	})
	if err != nil {
		return nil, err
	}
	j.mu.Lock()
	j.master = m
	j.lastMasterAddr = m.Addr()
	// A terminate that raced the master's construction found nothing to
	// Stop; honor it now that the master exists.
	pendingStop := j.stopReason == stopKill || j.stopReason == stopDrain || j.stopReason == stopShutdown
	j.mu.Unlock()
	if pendingStop {
		m.Stop()
	}

	type runOut struct {
		res *engine.Result
		err error
	}
	outCh := make(chan runOut, 1)
	go func() {
		res, err := m.Run()
		outCh <- runOut{res, err}
	}()

	// Push the assignments; the master's accept loop is already serving.
	for i, name := range agents {
		as := &Assignment{
			JobID:             j.id,
			Generation:        gen,
			WorkerID:          i,
			MasterAddr:        m.Addr(),
			Scheme:            scheme,
			Data:              spec.Data,
			Wire:              spec.Wire,
			ComputePar:        spec.ComputePar,
			HeartbeatInterval: spec.HeartbeatInterval,
			ReconnectTimeout:  spec.ReconnectTimeout,
			CrashAtStep:       -1,
		}
		if firstRun {
			for _, f := range spec.Faults {
				if f.Worker == i {
					as.Delay = f.Delay
					if f.CrashAtStep >= 0 {
						as.CrashAtStep = f.CrashAtStep
					}
				}
			}
		}
		if err := s.fl.assign(name, as); err != nil {
			// The agent died between claim and assign; the master's accept
			// timeout (or the permanent-eviction monitor) deals with the
			// hole, so log and keep going rather than abort the job.
			s.events.Warn("plane.assign_failed", "could not push assignment", events.NoStep, i,
				events.Fields{"job": j.id, "agent": name, "error": err.Error()})
		}
	}
	j.mu.Lock()
	j.state = JobRunning
	j.mu.Unlock()
	if firstRun && gen == 0 {
		s.metrics.observeAdmission(time.Since(j.submitted).Seconds())
	}
	if !replanAt.IsZero() {
		lat := time.Since(replanAt)
		s.metrics.observeReplacement(lat.Seconds())
		s.metrics.markReplacement(j.id)
		j.mu.Lock()
		j.replacements++
		j.mu.Unlock()
		s.events.Info("plane.replacement_completed", "successor master assigned; job resumed warm",
			warmStep, events.NoWorker, events.Fields{"job": j.id, "generation": gen,
				"n": n, "latency": lat.String()})
		s.saveState()
	}
	s.metrics.setJobProgress(j.id, warmStep, n)

	out := <-outCh
	// Capture the decoder RNG position for the next life's restore.
	if rs, ok := st.(engine.RandStateful); ok {
		seed, draws := rs.RandState()
		j.mu.Lock()
		j.randSeed, j.randDraws, j.hasRand = seed, draws, true
		j.mu.Unlock()
	}
	return out.res, out.err
}

// requestReplacement is the OnPermanentEviction hook target: quiesce the
// job at the next step boundary and let runJob derive the new placement.
// Idempotent per generation — a second eviction while replacing is picked
// up by the replacement derivation anyway (it only keeps alive agents).
func (s *scheduler) requestReplacement(j *job, worker, workerGen int) {
	j.mu.Lock()
	if j.state != JobRunning || j.stopReason != stopNone {
		j.mu.Unlock()
		return
	}
	j.stopReason = stopReplan
	j.state = JobReplacing
	j.evicted = worker
	j.replanAt = time.Now()
	m := j.master
	j.mu.Unlock()
	s.events.Warn("plane.replacement_started", "permanent eviction; quiescing job for re-placement",
		events.NoStep, worker, events.Fields{"job": j.id, "worker_generation": workerGen})
	if m != nil {
		m.Stop()
	}
}

// replacementSet derives the successor fleet: survivors first (their
// partitions' loaders are already warm), then idle agents, shrinking the
// placement size until one builds — IS-GC keeps decoding any subset, so a
// smaller placement is always admissible down to whatever the scheme kind
// allows (FR needs c | n, HR needs a consistent group shape).
func (s *scheduler) replacementSet(j *job, prev []string) ([]string, error) {
	var survivors []string
	for _, name := range prev {
		if s.fl.aliveAgent(name) {
			survivors = append(survivors, name)
		}
	}
	candidates := append([]string(nil), survivors...)
	for _, name := range s.fl.idle() {
		candidates = append(candidates, name)
	}
	sort.Strings(candidates[len(survivors):]) // idle part already sorted; keep survivors first
	target := j.spec.Scheme.N
	if len(candidates) < target {
		target = len(candidates)
	}
	for n := target; n >= 1; n-- {
		scheme := j.spec.Scheme
		scheme.N = n
		if _, err := scheme.Build(); err == nil {
			return candidates[:n], nil
		}
	}
	return nil, fmt.Errorf("controlplane: job %s: no feasible placement for %d surviving agents (scheme %s c=%d)",
		j.id, len(candidates), j.spec.Scheme.Scheme, j.spec.Scheme.C)
}

// startTombstone binds a quiesced job's old master address and answers
// every registration attempt with MsgJobGone until the TTL (or plane
// shutdown), so workers that are not fleet agents stop retrying. Binding
// can fail if the port was reused — then the tombstone is skipped; the
// workers' bounded reconnect budget still ends the spin.
func (s *scheduler) startTombstone(addr, jobID string) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		s.events.Debug("plane.tombstone_skipped", "old master address not bindable", events.NoStep,
			events.NoWorker, events.Fields{"job": jobID, "addr": addr, "error": err.Error()})
		return
	}
	s.events.Info("plane.tombstone_started", "answering the dead master's address with job-gone",
		events.NoStep, events.NoWorker, events.Fields{"job": jobID, "addr": addr})
	s.loopWG.Add(2)
	go func() {
		defer s.loopWG.Done()
		select {
		case <-time.After(tombstoneTTL):
		case <-s.quit:
		}
		_ = ln.Close()
	}()
	go func() {
		defer s.loopWG.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go answerJobGone(c)
		}
	}()
}

// answerJobGone speaks just enough of the cluster handshake to deliver the
// terminal reject: read the gob hello, answer MsgJobGone. Works for both
// codec proposals — the reject arrives before any upgrade, exactly like a
// done master's early reject.
func answerJobGone(c net.Conn) {
	defer func() { _ = c.Close() }()
	_ = c.SetDeadline(time.Now().Add(2 * time.Second))
	dec := gob.NewDecoder(c)
	var hello cluster.Envelope
	if dec.Decode(&hello) != nil || hello.Kind != cluster.MsgHello {
		return
	}
	_ = gob.NewEncoder(c).Encode(&cluster.Envelope{Kind: cluster.MsgJobGone})
}
