package controlplane

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"isgc/internal/admin"
	"isgc/internal/cliconfig"
	"isgc/internal/events"
	"isgc/internal/metrics"
	"isgc/internal/obs"
)

// TestObservabilityE2E is the observability acceptance drill: two jobs on
// one fleet — one healthy, one configured to ignore its stragglers so
// aggressively (W=1 with an injected slow worker) that its recovered
// fraction sits below the SLO floor every step. The federated store must
// serve non-empty per-job gather_p95 and recovered_fraction series, the
// dashboard must render with both job ids, the breach must fire exactly
// one SLO event (no flapping) and surface in /healthz and /api/alerts,
// and the alert must resolve — exactly once — after the job finishes.
func TestObservabilityE2E(t *testing.T) {
	store := obs.NewStore(obs.StoreConfig{Interval: 10 * time.Millisecond, Retention: 2048})
	store.Start()
	defer store.Stop()
	ev := events.New(events.Config{})
	rules := obs.NewRules(obs.RulesConfig{
		Store:    store,
		Events:   ev,
		Interval: 10 * time.Millisecond,
		Rules: []obs.Rule{{
			Name:   "recovered-fraction-floor",
			Series: "isgc_master_recovered_fraction",
			Agg:    obs.AggLast,
			Window: 300 * time.Millisecond,
			Op:     obs.OpBelow,
			Bound:  0.9,
			For:    40 * time.Millisecond,
		}},
	})
	rules.Start()
	defer rules.Stop()

	planeReg := metrics.NewRegistry()
	p, _ := startPlane(t, Config{Obs: store, Registry: planeReg}, 8)
	store.AddSource("plane", planeReg, nil)

	adm := admin.New(admin.Config{
		Registry:   planeReg,
		TimeSeries: store,
		Alerts:     rules,
		Health: func() any {
			return map[string]any{"jobs": p.Jobs()}
		},
		Extra: map[string]http.Handler{"/jobs": p.Handler()},
	})
	srv := httptest.NewServer(adm.Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 32<<10)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, b.String()
	}

	// Both jobs run cr(4,2): workers {0,2} (or {1,3}) are an independent
	// set covering all four partitions, so a healthy full gather decodes
	// to recovered fraction 1.0. Job A gathers all four workers. Job B
	// gathers only the first arrival (W=1) while worker 0 is fast and
	// workers 1–3 are injected stragglers — one chosen worker recovers 2
	// of 4 partitions, a sustained 0.5 recovered fraction below the 0.9
	// floor.
	specA := steadySpec()
	specA.Scheme = cliconfig.SchemeSpec{Scheme: "cr", N: 4, C: 2}
	specA.MaxSteps = 60
	idA, err := p.Submit(specA)
	if err != nil {
		t.Fatal(err)
	}
	specB := JobSpec{
		Name:       "straggler-ignorer",
		Scheme:     cliconfig.SchemeSpec{Scheme: "cr", N: 4, C: 2},
		Data:       cliconfig.DefaultData(7),
		MaxSteps:   150,
		W:          1,
		ComputePar: 1,
		Faults: []WorkerFault{
			{Worker: 0, CrashAtStep: -1, Delay: 4 * time.Millisecond},
			{Worker: 1, CrashAtStep: -1, Delay: 60 * time.Millisecond},
			{Worker: 2, CrashAtStep: -1, Delay: 60 * time.Millisecond},
			{Worker: 3, CrashAtStep: -1, Delay: 60 * time.Millisecond},
		},
	}
	idB, err := p.Submit(specB)
	if err != nil {
		t.Fatal(err)
	}

	// The breach fires while B is still running.
	waitForStep(t, p, idB, 3)
	deadline := time.Now().Add(30 * time.Second)
	for rules.Firing() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("SLO never fired; alerts: %+v", rules.Alerts())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Firing state is visible on every surface.
	code, body := get("/api/alerts")
	if code != 200 || !strings.Contains(body, `"state": "firing"`) ||
		!strings.Contains(body, `"job": "`+idB+`"`) {
		t.Fatalf("/api/alerts during breach: %d %s", code, body)
	}
	code, body = get("/healthz")
	if code != 200 {
		t.Fatalf("/healthz: %d", code)
	}
	var health struct {
		Alerts struct {
			Summary obs.Summary `json:"summary"`
			Firing  []obs.Alert `json:"firing"`
		} `json:"alerts"`
	}
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatalf("healthz decode: %v\n%s", err, body)
	}
	if health.Alerts.Summary.Firing != 1 || len(health.Alerts.Firing) != 1 ||
		health.Alerts.Firing[0].Rule != "recovered-fraction-floor" {
		t.Fatalf("healthz alerts = %+v, want the floor rule firing", health.Alerts)
	}

	waitForState(t, p, idA, JobCompleted)
	waitForState(t, p, idB, JobCompleted)

	// Per-job series are non-empty for both jobs.
	for _, job := range []string{idA, idB} {
		for _, name := range []string{"isgc_master_gather_latency_seconds_p95", "isgc_master_recovered_fraction"} {
			code, body := get("/api/timeseries?name=" + name + "&label.job=" + job)
			if code != 200 {
				t.Fatalf("timeseries %s job %s: status %d", name, job, code)
			}
			var resp struct {
				Series []struct {
					Points [][2]float64 `json:"points"`
				} `json:"series"`
			}
			if err := json.Unmarshal([]byte(body), &resp); err != nil {
				t.Fatal(err)
			}
			if len(resp.Series) != 1 || len(resp.Series[0].Points) == 0 {
				t.Fatalf("series %s for job %s is empty: %s", name, job, body)
			}
		}
	}

	// The healthy job's recovered fraction stayed at 1.0; the
	// straggler-ignorer's sat at 0.5.
	var frac struct {
		Series []struct {
			Labels map[string]string `json:"labels"`
			Points [][2]float64      `json:"points"`
		} `json:"series"`
	}
	_, body = get("/api/timeseries?name=isgc_master_recovered_fraction")
	if err := json.Unmarshal([]byte(body), &frac); err != nil {
		t.Fatal(err)
	}
	for _, s := range frac.Series {
		last := s.Points[len(s.Points)-1][1]
		switch s.Labels["job"] {
		case idA:
			if last != 1.0 {
				t.Errorf("job A recovered fraction = %v, want 1.0", last)
			}
		case idB:
			if last > 0.9 {
				t.Errorf("job B recovered fraction = %v, want below the floor", last)
			}
		}
	}

	// The dashboard renders and names both jobs.
	code, body = get("/debug/dash")
	if code != 200 {
		t.Fatalf("/debug/dash: %d", code)
	}
	for _, id := range []string{idA, idB} {
		if !strings.Contains(body, id) {
			t.Errorf("dashboard missing job id %s", id)
		}
	}

	// The finished job's series vanish from the rule's window and the
	// alert resolves. Exactly one firing and one resolved event, ever.
	deadline = time.Now().Add(30 * time.Second)
	for rules.Firing() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("alert never resolved after job completion: %+v", rules.Alerts())
		}
		time.Sleep(10 * time.Millisecond)
	}
	var fired, resolved int
	for _, e := range ev.Snapshot() {
		switch e.Type {
		case "slo_firing":
			fired++
		case "slo_resolved":
			resolved++
		}
	}
	if fired != 1 || resolved != 1 {
		t.Fatalf("SLO events: %d firing, %d resolved — want exactly 1 + 1 (no flapping)", fired, resolved)
	}
}
