package controlplane

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"isgc/internal/cluster"
	"isgc/internal/events"
	"isgc/internal/model"
	"isgc/internal/straggler"
)

// AgentConfig configures one fleet agent.
type AgentConfig struct {
	// FleetAddr is the control plane's fleet listener.
	FleetAddr string
	// Name identifies this agent in the pool; it must be unique per fleet
	// (a duplicate name supersedes the older registration).
	Name string
	// PingInterval is the liveness heartbeat period (default 500ms).
	PingInterval time.Duration
	// DialTimeout bounds the fleet dial (default 5s).
	DialTimeout time.Duration
	// Events, when non-nil, receives the agent's structured event stream.
	Events *events.Log
}

// Agent is the worker-side half of the fleet: one long-lived process (or
// goroutine) that registers with the control plane, then serves whatever
// assignments the scheduler pushes — building a cluster.Worker per
// assignment from the shared scheme/data specs, running it, and reporting
// back when it ends. One agent serves one worker slot at a time; a new
// assignment supersedes the old one (the previous worker is stopped
// first), which is exactly the re-placement handoff path.
type Agent struct {
	cfg AgentConfig
	c   *fconn

	mu         sync.Mutex
	worker     *cluster.Worker // current run's worker (nil between runs)
	curJob     string          // current assignment's job id
	curDone    chan struct{}   // closed when the current run goroutine exits
	curStopped bool            // this run was stopped by the agent (release/supersede)
	lastEpoch  int             // epoch of the newest assignment, echoed in dones

	stopping atomic.Bool
	stopOnce sync.Once
}

// NewAgent validates the configuration; nothing dials until Run.
func NewAgent(cfg AgentConfig) (*Agent, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("controlplane: agent needs a name")
	}
	if cfg.FleetAddr == "" {
		return nil, fmt.Errorf("controlplane: agent needs a fleet address")
	}
	if cfg.PingInterval <= 0 {
		cfg.PingInterval = defaultPingInterval
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	return &Agent{cfg: cfg}, nil
}

// Run registers with the fleet and serves assignments until the plane says
// stop, Stop/Kill is called, or the fleet connection breaks.
func (a *Agent) Run() error {
	raw, err := net.DialTimeout("tcp", a.cfg.FleetAddr, a.cfg.DialTimeout)
	if err != nil {
		return fmt.Errorf("controlplane: agent %s: dial fleet: %w", a.cfg.Name, err)
	}
	c := newFconn(raw)
	a.mu.Lock()
	a.c = c
	a.mu.Unlock()
	if err := c.send(&fleetMsg{Kind: fleetHello, Name: a.cfg.Name}); err != nil {
		c.close()
		return fmt.Errorf("controlplane: agent %s: hello: %w", a.cfg.Name, err)
	}
	a.cfg.Events.Info("agent.registered", "registered with fleet", events.NoStep, events.NoWorker,
		events.Fields{"agent": a.cfg.Name, "fleet": a.cfg.FleetAddr})

	pingDone := make(chan struct{})
	go a.pingLoop(c, pingDone)
	defer func() {
		close(pingDone)
		a.stopCurrent()
		c.close()
	}()

	for {
		m, err := c.recv()
		if err != nil {
			if a.stopping.Load() {
				return nil
			}
			return fmt.Errorf("controlplane: agent %s: fleet connection lost: %w", a.cfg.Name, err)
		}
		switch m.Kind {
		case fleetStop:
			a.cfg.Events.Info("agent.stopped", "fleet said stop", events.NoStep, events.NoWorker,
				events.Fields{"agent": a.cfg.Name})
			return nil
		case fleetRelease:
			// Stop the current worker; its run goroutine reports the done.
			// A release for a job this agent no longer runs is stale —
			// ignoring it is what makes release job-scoped end to end.
			a.mu.Lock()
			cur, busy, epoch := a.curJob, a.curDone != nil, a.lastEpoch
			a.mu.Unlock()
			switch {
			case busy && (m.JobID == "" || m.JobID == cur):
				a.stopCurrent()
			case !busy && m.JobID == "":
				// Idle, unscoped release: ack so the pool view converges.
				_ = c.send(&fleetMsg{Kind: fleetDone, Status: StatusStopped, Epoch: epoch})
			}
		case fleetAssign:
			a.stopCurrent()
			a.startAssignment(c, m.Assign)
		}
	}
}

// pingLoop keeps the agent registered while a worker run (or nothing at
// all) occupies the main loop.
func (a *Agent) pingLoop(c *fconn, done chan struct{}) {
	t := time.NewTicker(a.cfg.PingInterval)
	defer t.Stop()
	for {
		select {
		case <-done:
			return
		case <-t.C:
			if c.send(&fleetMsg{Kind: fleetPing}) != nil {
				return
			}
		}
	}
}

// stopCurrent stops the in-flight worker run, if any, and waits for its
// goroutine (which sends the fleetDone) to exit. Reports whether there was
// a run to stop.
func (a *Agent) stopCurrent() bool {
	a.mu.Lock()
	w, done := a.worker, a.curDone
	if done != nil {
		a.curStopped = true
	}
	a.mu.Unlock()
	if done == nil {
		return false
	}
	if w != nil {
		w.Stop()
	}
	<-done
	return true
}

// startAssignment builds the worker for one assignment and runs it in the
// background; the run goroutine owns the fleetDone report.
func (a *Agent) startAssignment(c *fconn, as *Assignment) {
	a.mu.Lock()
	a.lastEpoch = as.Epoch
	a.mu.Unlock()
	a.cfg.Events.Info("agent.assigned", "received assignment", events.NoStep, as.WorkerID,
		events.Fields{"agent": a.cfg.Name, "job": as.JobID, "generation": as.Generation,
			"master": as.MasterAddr, "n": as.Scheme.N, "epoch": as.Epoch})
	w, err := buildWorker(as, a.cfg.Events)
	if err != nil {
		a.cfg.Events.Error("agent.assignment_failed", "could not build worker", events.NoStep,
			as.WorkerID, events.Fields{"agent": a.cfg.Name, "job": as.JobID, "error": err.Error()})
		_ = c.send(&fleetMsg{Kind: fleetDone, JobID: as.JobID, Status: StatusError, Error: err.Error(),
			Epoch: as.Epoch})
		return
	}
	done := make(chan struct{})
	a.mu.Lock()
	a.worker, a.curJob, a.curDone, a.curStopped = w, as.JobID, done, false
	a.mu.Unlock()
	go func() {
		defer close(done)
		steps, runErr := w.Run()
		a.mu.Lock()
		stopped := a.curStopped
		a.worker, a.curJob, a.curDone = nil, "", nil
		a.mu.Unlock()
		status := StatusExited
		var errMsg string
		switch {
		case w.JobGone():
			status = StatusJobGone
		case runErr != nil:
			status, errMsg = StatusError, runErr.Error()
		case stopped || a.stopping.Load():
			status = StatusStopped
		}
		a.cfg.Events.Info("agent.run_finished", "worker run ended", events.NoStep, as.WorkerID,
			events.Fields{"agent": a.cfg.Name, "job": as.JobID, "steps": steps, "status": status})
		_ = c.send(&fleetMsg{Kind: fleetDone, JobID: as.JobID, Status: status, Error: errMsg,
			Epoch: as.Epoch})
	}()
}

// Stop makes the agent leave the fleet gracefully: the current worker (if
// any) is stopped and the fleet connection closed. Run returns nil.
func (a *Agent) Stop() {
	a.stopOnce.Do(func() {
		a.stopping.Store(true)
		a.stopCurrent()
		a.mu.Lock()
		c := a.c
		a.mu.Unlock()
		if c != nil {
			c.close()
		}
	})
}

// Kill simulates abrupt agent death for tests and drills: the fleet
// connection and the current worker's master connection are torn down with
// no farewell on either channel — from the control plane's view this agent
// just vanished, and from the job master's view its worker went dark. Run
// returns an error (connection lost), matching a killed process.
func (a *Agent) Kill() {
	a.mu.Lock()
	w := a.worker
	c := a.c
	a.mu.Unlock()
	if w != nil {
		w.Stop() // closes the master connection without a farewell message
	}
	if c != nil {
		c.close()
	}
}

// buildWorker constructs the cluster.Worker an assignment describes: the
// placement row, the deterministic per-partition loaders, and any injected
// delay/fault — the same derivation the isgc-worker CLI performs from its
// flags, which is what keeps partition replicas bit-identical.
func buildWorker(as *Assignment, ev *events.Log) (*cluster.Worker, error) {
	p, err := as.Scheme.Build()
	if err != nil {
		return nil, err
	}
	if as.WorkerID >= p.N() {
		return nil, fmt.Errorf("controlplane: worker %d out of range for n=%d", as.WorkerID, p.N())
	}
	data, err := as.Data.BuildDataset()
	if err != nil {
		return nil, err
	}
	parts := p.Partitions(as.WorkerID)
	loaders, err := as.Data.BuildLoaders(data, p.N(), parts)
	if err != nil {
		return nil, err
	}
	var delay straggler.Model
	if as.Delay > 0 {
		delay = straggler.Exponential{Mean: as.Delay}
	}
	var fault straggler.Fault
	if as.CrashAtStep >= 0 {
		fault = straggler.CrashAt{Step: as.CrashAtStep}
	}
	return cluster.NewWorker(cluster.WorkerConfig{
		Addr:              as.MasterAddr,
		ID:                as.WorkerID,
		Partitions:        parts,
		Loaders:           loaders,
		Model:             model.SoftmaxRegression{Features: as.Data.Features, Classes: as.Data.Classes},
		Encode:            cluster.SumEncoder(),
		Delay:             delay,
		DelaySeed:         as.Data.Seed + int64(as.WorkerID),
		Fault:             fault,
		FaultSeed:         as.Data.Seed + int64(as.WorkerID),
		ComputePar:        as.ComputePar,
		HeartbeatInterval: as.HeartbeatInterval,
		ReconnectTimeout:  as.ReconnectTimeout,
		Wire:              as.Wire,
		Events:            ev,
	})
}
