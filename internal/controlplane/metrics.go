package controlplane

import (
	"isgc/internal/metrics"
)

// PlaneMetrics is the control plane's instrument set: job lifecycle
// counters, fleet-size gauges, per-job progress vecs, and the two
// latencies the scheduler is judged on — admission (submit → running) and
// re-placement (permanent eviction → resumed). All fields are nil-safe via
// the mark*/set* helpers, matching the cluster package's discipline.
type PlaneMetrics struct {
	reg *metrics.Registry

	// JobsSubmitted .. JobsDrained count lifecycle transitions.
	JobsSubmitted *metrics.Counter
	JobsCompleted *metrics.Counter
	JobsFailed    *metrics.Counter
	JobsKilled    *metrics.Counter
	JobsDrained   *metrics.Counter
	// JobsActive is the number of non-terminal jobs.
	JobsActive *metrics.Gauge
	// FleetAgents/FleetIdle are the pool-size gauges.
	FleetAgents *metrics.Gauge
	FleetIdle   *metrics.Gauge
	// Replacements counts completed live re-placements, total and per job.
	Replacements    *metrics.Counter
	JobReplacements *metrics.CounterVec
	// JobSteps is each job's last observed step, labeled by job id.
	JobSteps *metrics.GaugeVec
	// JobWorkers is each job's current placement size, labeled by job id.
	JobWorkers *metrics.GaugeVec
	// AdmissionLatency measures submit → first step broadcastable
	// (assignments pushed); ReplacementLatency measures permanent-eviction
	// trigger → successor master assigned.
	AdmissionLatency   *metrics.Histogram
	ReplacementLatency *metrics.Histogram
}

// NewPlaneMetrics registers the control-plane families on reg. One
// PlaneMetrics per plane. A nil registry yields a nil *PlaneMetrics, which
// every helper accepts — the unmetered plane costs one branch per call.
func NewPlaneMetrics(reg *metrics.Registry) *PlaneMetrics {
	if reg == nil {
		return nil
	}
	return &PlaneMetrics{
		reg:           reg,
		JobsSubmitted: reg.NewCounter("isgc_plane_jobs_submitted_total", "Jobs accepted by the scheduler."),
		JobsCompleted: reg.NewCounter("isgc_plane_jobs_completed_total", "Jobs that ran to completion."),
		JobsFailed:    reg.NewCounter("isgc_plane_jobs_failed_total", "Jobs that failed."),
		JobsKilled:    reg.NewCounter("isgc_plane_jobs_killed_total", "Jobs killed by an operator."),
		JobsDrained:   reg.NewCounter("isgc_plane_jobs_drained_total", "Jobs drained by an operator."),
		JobsActive:    reg.NewGauge("isgc_plane_jobs_active", "Non-terminal jobs (pending, running, replacing)."),
		FleetAgents:   reg.NewGauge("isgc_plane_fleet_agents", "Registered, alive fleet agents."),
		FleetIdle:     reg.NewGauge("isgc_plane_fleet_idle", "Alive agents with no assignment."),
		Replacements:  reg.NewCounter("isgc_plane_replacements_total", "Completed live re-placements."),
		JobReplacements: reg.NewCounterVec("isgc_plane_job_replacements_total",
			"Completed live re-placements per job.", "job"),
		JobSteps:   reg.NewGaugeVec("isgc_plane_job_steps", "Last observed step per job.", "job"),
		JobWorkers: reg.NewGaugeVec("isgc_plane_job_workers", "Current placement size per job.", "job"),
		AdmissionLatency: reg.NewHistogram("isgc_plane_admission_seconds",
			"Latency from job submission to its assignments being pushed.", metrics.DefBuckets),
		ReplacementLatency: reg.NewHistogram("isgc_plane_replacement_seconds",
			"Latency from permanent-eviction trigger to the successor master's assignments.", metrics.DefBuckets),
	}
}

func (pm *PlaneMetrics) markSubmitted() {
	if pm != nil {
		pm.JobsSubmitted.Inc()
	}
}

// markTerminal records a job's terminal transition.
func (pm *PlaneMetrics) markTerminal(state JobState) {
	if pm == nil {
		return
	}
	switch state {
	case JobCompleted:
		pm.JobsCompleted.Inc()
	case JobFailed:
		pm.JobsFailed.Inc()
	case JobKilled:
		pm.JobsKilled.Inc()
	case JobDrained:
		pm.JobsDrained.Inc()
	}
}

func (pm *PlaneMetrics) setActive(n int) {
	if pm != nil {
		pm.JobsActive.Set(float64(n))
	}
}

func (pm *PlaneMetrics) setFleet(alive, idle int) {
	if pm != nil {
		pm.FleetAgents.Set(float64(alive))
		pm.FleetIdle.Set(float64(idle))
	}
}

func (pm *PlaneMetrics) markReplacement(jobID string) {
	if pm != nil {
		pm.Replacements.Inc()
		pm.JobReplacements.With(jobID).Inc()
	}
}

func (pm *PlaneMetrics) setJobProgress(jobID string, step, workers int) {
	if pm != nil {
		pm.JobSteps.With(jobID).Set(float64(step))
		pm.JobWorkers.With(jobID).Set(float64(workers))
	}
}

func (pm *PlaneMetrics) observeAdmission(seconds float64) {
	if pm != nil {
		pm.AdmissionLatency.Observe(seconds)
	}
}

func (pm *PlaneMetrics) observeReplacement(seconds float64) {
	if pm != nil {
		pm.ReplacementLatency.Observe(seconds)
	}
}
