package controlplane

import (
	"fmt"
	"testing"
	"time"

	"isgc/internal/cliconfig"
)

// benchFleet builds an in-memory fleet of n idle alive agents — no
// sockets, so the benchmarks below measure the scheduler's decision
// compute (placement derivation, pool scans, claims), not network I/O.
func benchFleet(n int) *fleet {
	f := newFleet(0, nil, nil)
	now := time.Now()
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("agent-%03d", i)
		f.agents[name] = &fleetAgent{name: name, alive: true, lastSeen: now}
	}
	return f
}

// BenchmarkReplacementSet is the re-placement decision: scan the pool,
// keep survivors first, and shrink the scheme until a placement builds.
// This is the plane-side compute between "worker declared permanently
// gone" and "successor assignments pushed".
func BenchmarkReplacementSet(b *testing.B) {
	for _, fleetSize := range []int{8, 64, 256} {
		b.Run(fmt.Sprintf("fleet=%d", fleetSize), func(b *testing.B) {
			fl := benchFleet(fleetSize)
			s := newScheduler(fl, nil, nil, "", nil)
			j := &job{id: "job-bench", spec: JobSpec{Scheme: cliconfig.SchemeSpec{Scheme: "cr", N: 8, C: 4}}}
			prev := fl.idle()[:8]
			for _, name := range prev {
				fl.agents[name].jobID = j.id
			}
			fl.agents[prev[3]].alive = false // the evicted worker
			want := 8
			if fleetSize == 8 {
				want = 7 // no spare to backfill: the placement shrinks
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				set, err := s.replacementSet(j, prev)
				if err != nil || len(set) != want {
					b.Fatalf("replacementSet = %v, %v", set, err)
				}
			}
		})
	}
}

// BenchmarkAdmissionClaim is the admission decision: list the idle pool
// and atomically reserve a job's worth of agents from it.
func BenchmarkAdmissionClaim(b *testing.B) {
	for _, fleetSize := range []int{8, 64, 256} {
		b.Run(fmt.Sprintf("fleet=%d", fleetSize), func(b *testing.B) {
			fl := benchFleet(fleetSize)
			s := newScheduler(fl, nil, nil, "", nil)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idle := fl.idle()
				if !s.claim(idle[:8], "job-bench") {
					b.Fatal("claim failed on an idle pool")
				}
				fl.mu.Lock()
				for _, name := range idle[:8] {
					fl.agents[name].jobID = ""
				}
				fl.mu.Unlock()
			}
		})
	}
}

// BenchmarkPlacementBuild is the raw cost of deriving a placement from a
// scheme spec — paid once per admission and once per re-placement
// candidate size while shrinking.
func BenchmarkPlacementBuild(b *testing.B) {
	specs := []cliconfig.SchemeSpec{
		{Scheme: "fr", N: 12, C: 4},
		{Scheme: "cr", N: 12, C: 4},
		{Scheme: "hr", N: 12, C: 4, C1: 2, G: 2},
	}
	for _, spec := range specs {
		b.Run(fmt.Sprintf("%s/n=%d", spec.Scheme, spec.N), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := spec.Build(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
