package trace

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestRunAccumulation(t *testing.T) {
	var r Run
	if r.Steps() != 0 || r.TotalTime() != 0 || r.MeanStepTime() != 0 || r.MeanRecovered() != 0 {
		t.Fatal("empty run must have zero aggregates")
	}
	if !math.IsNaN(r.FinalLoss()) {
		t.Fatal("empty run FinalLoss must be NaN")
	}
	r.Append(StepRecord{Step: 0, Loss: 2.0, RecoveredFraction: 0.5, Elapsed: time.Second})
	r.Append(StepRecord{Step: 1, Loss: 1.0, RecoveredFraction: 1.0, Elapsed: 3 * time.Second})
	if r.Steps() != 2 {
		t.Fatal("Steps wrong")
	}
	if r.TotalTime() != 4*time.Second {
		t.Fatalf("TotalTime = %v", r.TotalTime())
	}
	if r.MeanStepTime() != 2*time.Second {
		t.Fatalf("MeanStepTime = %v", r.MeanStepTime())
	}
	if r.MeanRecovered() != 0.75 {
		t.Fatalf("MeanRecovered = %v", r.MeanRecovered())
	}
	if r.FinalLoss() != 1.0 {
		t.Fatalf("FinalLoss = %v", r.FinalLoss())
	}
	losses := r.Losses()
	if len(losses) != 2 || losses[0] != 2.0 || losses[1] != 1.0 {
		t.Fatalf("Losses = %v", losses)
	}
}

func TestPartitionInclusion(t *testing.T) {
	var r Run
	empty := r.PartitionInclusion(4)
	for _, v := range empty {
		if v != 0 {
			t.Fatal("empty run must yield zero inclusion")
		}
	}
	r.Append(StepRecord{Partitions: []int{0, 1}})
	r.Append(StepRecord{Partitions: []int{1, 2, 3}})
	r.Append(StepRecord{Partitions: nil})              // producer without tracking
	r.Append(StepRecord{Partitions: []int{1, 99, -1}}) // out-of-range ignored
	got := r.PartitionInclusion(4)
	want := []float64{0.25, 0.75, 0.25, 0.25}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("inclusion = %v, want %v", got, want)
		}
	}
}

func TestMeanAndStddev(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) must be 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if Stddev([]float64{5}) != 0 {
		t.Error("Stddev of singleton must be 0")
	}
	if got := Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); math.Abs(got-2) > 1e-12 {
		t.Errorf("Stddev = %v, want 2", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 15}, {100, 50}, {50, 35}, {25, 20}, {-5, 15}, {150, 50},
	}
	for _, tc := range cases {
		if got := Percentile(xs, tc.p); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	// Interpolation between order statistics.
	if got := Percentile([]float64{10, 20}, 50); got != 15 {
		t.Errorf("interp = %v, want 15", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("Percentile of empty must be NaN")
	}
	// Input must not be mutated.
	ys := []float64{3, 1, 2}
	Percentile(ys, 50)
	if ys[0] != 3 {
		t.Error("Percentile must not sort the input in place")
	}
}

func TestMeanDuration(t *testing.T) {
	if MeanDuration(nil) != 0 {
		t.Error("MeanDuration(nil)")
	}
	if got := MeanDuration([]time.Duration{time.Second, 3 * time.Second}); got != 2*time.Second {
		t.Errorf("MeanDuration = %v", got)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Fig X", "scheme", "w", "value", "time")
	tab.AddRow("IS-GC-FR", 2, 0.996, 1500*time.Millisecond)
	tab.AddRow("IS-SGD", 2, 0.5, 900*time.Millisecond)
	if tab.NumRows() != 2 {
		t.Fatal("NumRows")
	}
	s := tab.String()
	if !strings.Contains(s, "== Fig X ==") {
		t.Errorf("missing caption:\n%s", s)
	}
	if !strings.Contains(s, "IS-GC-FR") || !strings.Contains(s, "0.996") || !strings.Contains(s, "1.5s") {
		t.Errorf("missing cells:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // caption + header + separator + 2 rows
		t.Errorf("got %d lines:\n%s", len(lines), s)
	}
	// Integral floats print without decimals.
	tab2 := NewTable("", "x")
	tab2.AddRow(3.0)
	if !strings.Contains(tab2.String(), "3") || strings.Contains(tab2.String(), "3.0") {
		t.Errorf("integral float formatting wrong:\n%s", tab2.String())
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("cap", "a", "b")
	tab.AddRow(1, 2.5)
	csv := tab.CSV()
	want := "a,b\n1,2.5\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}

func TestLatencySummary(t *testing.T) {
	var r Run
	if s := r.LatencySummary(); s.P50 != 0 || s.P95 != 0 || s.P99 != 0 {
		t.Errorf("empty run summary = %+v, want zeros", s)
	}
	for i := 1; i <= 100; i++ {
		r.Append(StepRecord{Elapsed: time.Duration(i) * time.Millisecond})
	}
	s := r.LatencySummary()
	if s.P50 != 50500*time.Microsecond {
		t.Errorf("p50 = %v, want 50.5ms", s.P50)
	}
	if s.P95 != 95050*time.Microsecond {
		t.Errorf("p95 = %v, want 95.05ms", s.P95)
	}
	if s.P99 != 99010*time.Microsecond {
		t.Errorf("p99 = %v, want 99.01ms", s.P99)
	}
	str := s.String()
	for _, want := range []string{"p50=", "p95=", "p99="} {
		if !strings.Contains(str, want) {
			t.Errorf("summary string %q missing %q", str, want)
		}
	}
}

// TestEmptyInputGuards pins the documented behaviour of the summary
// statistics on empty input: Percentile is NaN, Mean and Stddev are 0,
// and none of them panic.
func TestEmptyInputGuards(t *testing.T) {
	if v := Percentile(nil, 50); !math.IsNaN(v) {
		t.Errorf("Percentile(nil) = %v, want NaN", v)
	}
	if v := Percentile([]float64{}, 99); !math.IsNaN(v) {
		t.Errorf("Percentile(empty) = %v, want NaN", v)
	}
	if v := Mean(nil); v != 0 {
		t.Errorf("Mean(nil) = %v, want 0", v)
	}
	if v := Stddev(nil); v != 0 {
		t.Errorf("Stddev(nil) = %v, want 0", v)
	}
	if v := Stddev([]float64{7}); v != 0 {
		t.Errorf("Stddev(single) = %v, want 0", v)
	}
	if v := MeanDuration(nil); v != 0 {
		t.Errorf("MeanDuration(nil) = %v, want 0", v)
	}
	// Out-of-range percentiles clamp rather than index out of bounds.
	xs := []float64{1, 2, 3}
	if v := Percentile(xs, -5); v != 1 {
		t.Errorf("Percentile(p=-5) = %v, want 1", v)
	}
	if v := Percentile(xs, 150); v != 3 {
		t.Errorf("Percentile(p=150) = %v, want 3", v)
	}
}
