package trace

import (
	"fmt"
	"sync"
	"time"
)

// maxAttrSamples caps the per-worker sample history so an unbounded run
// cannot grow the attribution state without limit. 8192 steps of history
// per worker is far beyond every experiment in this repository; once the
// cap is hit, further samples still update the chosen/ignored counters
// but are not retained for the percentile estimates.
const maxAttrSamples = 8192

// ArrivalSample is one worker's gradient delivery for one step, split
// into the two phases the master can attribute: how long the worker said
// the compute took, and how long the whole round trip took from the step
// broadcast until the gradient arrived at the master. Arrival − Compute
// is the overhead the network and queueing added.
type ArrivalSample struct {
	Worker int
	Step   int
	// Compute is the worker-reported gradient computation time
	// (0 = the worker did not report timing, e.g. an old binary).
	Compute time.Duration
	// Arrival is broadcast → gradient receipt, measured on the master's
	// clock. Immune to cross-machine clock skew, unlike the compute
	// start stamp.
	Arrival time.Duration
}

// Attribution accumulates arrival samples per worker and reduces them to
// the straggler-attribution report: who was slow, and was it compute or
// the network. It is race-safe and nil-receiver-safe so instrumentation
// call sites need no guards.
type Attribution struct {
	mu      sync.Mutex
	chosen  []int
	ignored []int
	samples [][]ArrivalSample
}

// NewAttribution returns an attribution accumulator for n workers.
func NewAttribution(n int) *Attribution {
	return &Attribution{
		chosen:  make([]int, n),
		ignored: make([]int, n),
		samples: make([][]ArrivalSample, n),
	}
}

// ObserveAccepted records a gradient the master gathered before the
// cut-off.
func (a *Attribution) ObserveAccepted(s ArrivalSample) {
	if a == nil || s.Worker < 0 || s.Worker >= len(a.chosen) {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.chosen[s.Worker]++
	if len(a.samples[s.Worker]) < maxAttrSamples {
		a.samples[s.Worker] = append(a.samples[s.Worker], s)
	}
}

// ObserveIgnored records a gradient that arrived but was not used —
// stale (previous step), duplicate, or past the gather cut-off. The
// sample is retained for the latency percentiles: a worker the gather
// always skips is precisely the one whose arrival profile the report
// must still show.
func (a *Attribution) ObserveIgnored(s ArrivalSample) {
	if a == nil || s.Worker < 0 || s.Worker >= len(a.ignored) {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.ignored[s.Worker]++
	if len(a.samples[s.Worker]) < maxAttrSamples {
		a.samples[s.Worker] = append(a.samples[s.Worker], s)
	}
}

// WorkerAttribution summarizes one worker's deliveries.
type WorkerAttribution struct {
	Worker int
	// Chosen counts gradients gathered before the cut-off; Ignored counts
	// arrivals the master discarded (stale, duplicate, or late).
	Chosen  int
	Ignored int
	// Compute percentiles of the worker-reported gradient computation
	// time (zero when the worker never reported timing).
	ComputeP50 time.Duration
	ComputeP95 time.Duration
	// Arrival percentiles of broadcast → receipt on the master's clock.
	ArrivalP50 time.Duration
	ArrivalP95 time.Duration
	// OverheadP50 is the median of Arrival − Compute per sample: the
	// network + queueing share of the round trip.
	OverheadP50 time.Duration
	// ComputeShare is ComputeP50 / ArrivalP50 (0 when undefined): near 1
	// means the worker is compute-bound, near 0 means delivery-bound.
	ComputeShare float64
}

// AttributionReport is the per-worker straggler attribution of one run.
type AttributionReport struct {
	Workers []WorkerAttribution
}

// Report reduces the accumulated samples. Safe to call mid-run; the
// report reflects deliveries observed so far.
func (a *Attribution) Report() AttributionReport {
	if a == nil {
		return AttributionReport{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	rep := AttributionReport{Workers: make([]WorkerAttribution, len(a.chosen))}
	for w := range a.chosen {
		wa := WorkerAttribution{Worker: w, Chosen: a.chosen[w], Ignored: a.ignored[w]}
		ss := a.samples[w]
		if len(ss) > 0 {
			compute := make([]float64, 0, len(ss))
			arrival := make([]float64, 0, len(ss))
			overhead := make([]float64, 0, len(ss))
			for _, s := range ss {
				// Zero fields mean "unmeasured" (a worker that reported no
				// timing, or a stale gradient with no current-step
				// baseline); they count above but must not drag the
				// percentiles toward 0.
				if s.Compute > 0 {
					compute = append(compute, float64(s.Compute))
				}
				if s.Arrival > 0 {
					arrival = append(arrival, float64(s.Arrival))
				}
				if s.Compute > 0 && s.Arrival > 0 {
					overhead = append(overhead, max(float64(s.Arrival-s.Compute), 0))
				}
			}
			wa.ArrivalP50 = time.Duration(Percentile(arrival, 50))
			wa.ArrivalP95 = time.Duration(Percentile(arrival, 95))
			if len(compute) > 0 {
				wa.ComputeP50 = time.Duration(Percentile(compute, 50))
				wa.ComputeP95 = time.Duration(Percentile(compute, 95))
				wa.OverheadP50 = time.Duration(Percentile(overhead, 50))
				if wa.ArrivalP50 > 0 {
					wa.ComputeShare = float64(wa.ComputeP50) / float64(wa.ArrivalP50)
				}
			}
		}
		rep.Workers[w] = wa
	}
	return rep
}

// Table renders the report as the operator-facing attribution table.
func (r AttributionReport) Table() *Table {
	t := NewTable("straggler attribution (per worker)",
		"worker", "chosen", "ignored", "compute p50", "compute p95",
		"arrival p50", "arrival p95", "overhead p50", "compute share")
	for _, w := range r.Workers {
		share := "-"
		if w.ComputeShare > 0 {
			share = fmt.Sprintf("%.2f", w.ComputeShare)
		}
		t.AddRow(w.Worker, w.Chosen, w.Ignored,
			roundAttr(w.ComputeP50), roundAttr(w.ComputeP95),
			roundAttr(w.ArrivalP50), roundAttr(w.ArrivalP95),
			roundAttr(w.OverheadP50), share)
	}
	return t
}

// roundAttr renders sub-millisecond latencies without collapsing them to
// "0s" the way the table's default millisecond rounding would.
func roundAttr(d time.Duration) string {
	if d == 0 {
		return "-"
	}
	return d.Round(time.Microsecond).String()
}
