package trace

import (
	"math"
	"strings"
	"testing"
	"unicode/utf8"
)

func TestSparklineBasics(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Error("empty series must render empty")
	}
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	if utf8.RuneCountInString(s) != 8 {
		t.Fatalf("rune count = %d, want 8", utf8.RuneCountInString(s))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[7] != '█' {
		t.Fatalf("endpoints wrong: %q", s)
	}
	// Monotone input → non-decreasing ticks.
	for i := 1; i < len(runes); i++ {
		if runes[i] < runes[i-1] {
			t.Fatalf("non-monotone render: %q", s)
		}
	}
}

func TestSparklineConstantSeries(t *testing.T) {
	s := Sparkline([]float64{5, 5, 5})
	if s != "▁▁▁" {
		t.Fatalf("constant series = %q, want lowest ticks", s)
	}
}

func TestSparklineInvalidValues(t *testing.T) {
	s := Sparkline([]float64{1, math.NaN(), 2, math.Inf(1)})
	runes := []rune(s)
	if runes[1] != ' ' || runes[3] != ' ' {
		t.Fatalf("invalid values must render as spaces: %q", s)
	}
	allBad := Sparkline([]float64{math.NaN(), math.Inf(-1)})
	if strings.TrimSpace(allBad) != "" {
		t.Fatalf("all-invalid series = %q, want blanks", allBad)
	}
}

func TestDownsample(t *testing.T) {
	xs := []float64{1, 1, 3, 3, 5, 5}
	got := Downsample(xs, 3)
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("Downsample = %v", got)
	}
	// No-op cases.
	if out := Downsample(xs, 10); len(out) != 6 {
		t.Fatal("n ≥ len must be a no-op")
	}
	if out := Downsample(xs, 0); len(out) != 6 {
		t.Fatal("n = 0 must be a no-op")
	}
	// Uneven buckets still cover everything.
	long := make([]float64, 10)
	for i := range long {
		long[i] = float64(i)
	}
	ds := Downsample(long, 3)
	if len(ds) != 3 {
		t.Fatalf("len = %d", len(ds))
	}
	if !(ds[0] < ds[1] && ds[1] < ds[2]) {
		t.Fatalf("downsample must preserve monotone shape: %v", ds)
	}
}

func TestSparklineWithDownsampledLossCurve(t *testing.T) {
	// A decaying loss curve renders high → low.
	losses := make([]float64, 200)
	for i := range losses {
		losses[i] = math.Exp(-float64(i) / 40)
	}
	s := []rune(Sparkline(Downsample(losses, 20)))
	if len(s) != 20 {
		t.Fatalf("len = %d", len(s))
	}
	if s[0] != '█' || s[len(s)-1] != '▁' {
		t.Fatalf("decay renders wrong: %q", string(s))
	}
}
