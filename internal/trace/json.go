package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// jsonRecord is the wire form of StepRecord: durations in milliseconds so
// external plotting tools need no Go-duration parsing.
type jsonRecord struct {
	Step              int     `json:"step"`
	Available         int     `json:"available"`
	Chosen            int     `json:"chosen"`
	RecoveredFraction float64 `json:"recovered_fraction"`
	Partitions        []int   `json:"partitions,omitempty"`
	Alive             int     `json:"alive,omitempty"`
	Degraded          bool    `json:"degraded,omitempty"`
	Loss              float64 `json:"loss"`
	Accuracy          float64 `json:"accuracy,omitempty"`
	ElapsedMillis     float64 `json:"elapsed_ms"`
}

type jsonRun struct {
	Steps         int          `json:"steps"`
	TotalMillis   float64      `json:"total_ms"`
	MeanRecovered float64      `json:"mean_recovered"`
	FinalLoss     float64      `json:"final_loss"`
	Records       []jsonRecord `json:"records"`
}

// WriteJSON serializes the run for external analysis/plotting. NaN losses
// (empty runs) are emitted as null via a -1 sentinel-free encoding: the
// summary FinalLoss is omitted when unavailable.
func (r *Run) WriteJSON(w io.Writer) error {
	out := jsonRun{
		Steps:         r.Steps(),
		TotalMillis:   float64(r.TotalTime()) / float64(time.Millisecond),
		MeanRecovered: r.MeanRecovered(),
		Records:       make([]jsonRecord, 0, len(r.Records)),
	}
	if r.Steps() > 0 {
		out.FinalLoss = r.FinalLoss()
	}
	for _, rec := range r.Records {
		out.Records = append(out.Records, jsonRecord{
			Step:              rec.Step,
			Available:         rec.Available,
			Chosen:            rec.Chosen,
			RecoveredFraction: rec.RecoveredFraction,
			Partitions:        rec.Partitions,
			Alive:             rec.Alive,
			Degraded:          rec.Degraded,
			Loss:              rec.Loss,
			Accuracy:          rec.Accuracy,
			ElapsedMillis:     float64(rec.Elapsed) / float64(time.Millisecond),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("trace: encode run: %w", err)
	}
	return nil
}

// ReadJSON parses a run previously written with WriteJSON.
func ReadJSON(rd io.Reader) (*Run, error) {
	var in jsonRun
	if err := json.NewDecoder(rd).Decode(&in); err != nil {
		return nil, fmt.Errorf("trace: decode run: %w", err)
	}
	run := &Run{}
	for _, rec := range in.Records {
		run.Append(StepRecord{
			Step:              rec.Step,
			Available:         rec.Available,
			Chosen:            rec.Chosen,
			RecoveredFraction: rec.RecoveredFraction,
			Partitions:        rec.Partitions,
			Alive:             rec.Alive,
			Degraded:          rec.Degraded,
			Loss:              rec.Loss,
			Accuracy:          rec.Accuracy,
			Elapsed:           time.Duration(rec.ElapsedMillis * float64(time.Millisecond)),
		})
	}
	return run, nil
}
