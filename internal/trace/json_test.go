package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestJSONRoundTrip(t *testing.T) {
	var r Run
	r.Append(StepRecord{Step: 0, Available: 3, Chosen: 2, RecoveredFraction: 0.5,
		Partitions: []int{0, 2}, Loss: 1.25, Elapsed: 1500 * time.Millisecond})
	r.Append(StepRecord{Step: 1, Available: 4, Chosen: 2, RecoveredFraction: 1.0,
		Partitions: []int{0, 1, 2, 3}, Alive: 3, Degraded: true,
		Loss: 0.75, Elapsed: 2 * time.Second})

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{`"steps": 2`, `"recovered_fraction": 0.5`, `"elapsed_ms": 1500`, `"final_loss": 0.75`} {
		if !strings.Contains(s, want) {
			t.Errorf("JSON missing %q:\n%s", want, s)
		}
	}

	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Steps() != 2 {
		t.Fatalf("round-trip steps = %d", back.Steps())
	}
	if back.Records[0].Elapsed != 1500*time.Millisecond {
		t.Fatalf("elapsed = %v", back.Records[0].Elapsed)
	}
	if back.FinalLoss() != 0.75 || back.MeanRecovered() != 0.75 {
		t.Fatalf("aggregates wrong: %v %v", back.FinalLoss(), back.MeanRecovered())
	}
	if len(back.Records[1].Partitions) != 4 {
		t.Fatal("partitions lost in round trip")
	}
	if back.Records[1].Alive != 3 || !back.Records[1].Degraded {
		t.Fatal("liveness fields lost in round trip")
	}
	if back.Records[0].Degraded {
		t.Fatal("degraded must default to false")
	}
	if back.DegradedSteps() != 1 {
		t.Fatalf("DegradedSteps = %d, want 1", back.DegradedSteps())
	}
}

func TestJSONEmptyRun(t *testing.T) {
	var r Run
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Steps() != 0 {
		t.Fatal("empty run must round-trip empty")
	}
}

func TestReadJSONGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{nope")); err == nil {
		t.Fatal("expected decode error")
	}
}
