package trace

import (
	"math"
	"strings"
)

// sparkTicks are the eight block heights used by Sparkline.
var sparkTicks = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders xs as a one-line unicode mini-chart, normalizing to
// the series' own min/max. NaN/Inf values render as spaces. An empty
// series yields "". Handy for printing loss curves in terminal output.
func Sparkline(xs []float64) string {
	if len(xs) == 0 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if math.IsInf(lo, 1) {
		return strings.Repeat(" ", len(xs)) // all values invalid
	}
	var b strings.Builder
	span := hi - lo
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			b.WriteByte(' ')
			continue
		}
		idx := 0
		if span > 0 {
			idx = int((x - lo) / span * float64(len(sparkTicks)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkTicks) {
			idx = len(sparkTicks) - 1
		}
		b.WriteRune(sparkTicks[idx])
	}
	return b.String()
}

// Downsample reduces xs to at most n points by averaging equal-width
// buckets, preserving the curve's shape for Sparkline rendering. It
// returns xs unchanged (not copied) when len(xs) ≤ n or n ≤ 0.
func Downsample(xs []float64, n int) []float64 {
	if n <= 0 || len(xs) <= n {
		return xs
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		start := i * len(xs) / n
		end := (i + 1) * len(xs) / n
		if end <= start {
			end = start + 1
		}
		sum := 0.0
		for _, x := range xs[start:end] {
			sum += x
		}
		out[i] = sum / float64(end-start)
	}
	return out
}
