package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestAttributionReport(t *testing.T) {
	a := NewAttribution(2)
	// Worker 0: compute-bound (compute ≈ arrival); worker 1: delivery-bound.
	for step := 0; step < 10; step++ {
		a.ObserveAccepted(ArrivalSample{Worker: 0, Step: step,
			Compute: 90 * time.Millisecond, Arrival: 100 * time.Millisecond})
		a.ObserveAccepted(ArrivalSample{Worker: 1, Step: step,
			Compute: 10 * time.Millisecond, Arrival: 200 * time.Millisecond})
	}
	a.ObserveIgnored(ArrivalSample{Worker: 1})
	a.ObserveIgnored(ArrivalSample{Worker: 1})

	rep := a.Report()
	if len(rep.Workers) != 2 {
		t.Fatalf("workers = %d, want 2", len(rep.Workers))
	}
	w0, w1 := rep.Workers[0], rep.Workers[1]
	if w0.Chosen != 10 || w0.Ignored != 0 || w1.Chosen != 10 || w1.Ignored != 2 {
		t.Fatalf("counts: %+v / %+v", w0, w1)
	}
	if w0.ComputeP50 != 90*time.Millisecond || w0.ArrivalP50 != 100*time.Millisecond {
		t.Fatalf("w0 percentiles: %+v", w0)
	}
	if w0.OverheadP50 != 10*time.Millisecond {
		t.Fatalf("w0 overhead = %v, want 10ms", w0.OverheadP50)
	}
	if w0.ComputeShare < 0.89 || w0.ComputeShare > 0.91 {
		t.Fatalf("w0 compute share = %v, want 0.9", w0.ComputeShare)
	}
	if w1.ComputeShare > 0.06 {
		t.Fatalf("w1 compute share = %v, want 0.05", w1.ComputeShare)
	}
}

func TestAttributionWithoutComputeTiming(t *testing.T) {
	a := NewAttribution(1)
	a.ObserveAccepted(ArrivalSample{Worker: 0, Arrival: 50 * time.Millisecond})
	w := a.Report().Workers[0]
	if w.ArrivalP50 != 50*time.Millisecond {
		t.Fatalf("arrival p50 = %v", w.ArrivalP50)
	}
	if w.ComputeP50 != 0 || w.ComputeShare != 0 {
		t.Fatalf("unreported compute must stay zero: %+v", w)
	}
}

func TestAttributionIgnoredWorkerKeepsLatencyProfile(t *testing.T) {
	// A worker the gather never chooses must still show its arrival
	// profile — that profile is the diagnosis.
	a := NewAttribution(1)
	for step := 0; step < 8; step++ {
		a.ObserveIgnored(ArrivalSample{Worker: 0, Step: step,
			Compute: 20 * time.Millisecond, Arrival: 500 * time.Millisecond})
	}
	// An unmeasurable (stale) arrival must not drag the percentiles to 0.
	a.ObserveIgnored(ArrivalSample{Worker: 0, Step: 8, Compute: 20 * time.Millisecond})
	w := a.Report().Workers[0]
	if w.Chosen != 0 || w.Ignored != 9 {
		t.Fatalf("counts: %+v", w)
	}
	if w.ArrivalP50 != 500*time.Millisecond {
		t.Fatalf("arrival p50 = %v, want 500ms from ignored samples", w.ArrivalP50)
	}
	if w.ComputeShare > 0.05 {
		t.Fatalf("compute share = %v, want delivery-bound (~0.04)", w.ComputeShare)
	}
}

func TestAttributionNilAndOutOfRange(t *testing.T) {
	var a *Attribution
	a.ObserveAccepted(ArrivalSample{Worker: 0})
	a.ObserveIgnored(ArrivalSample{Worker: 0})
	if len(a.Report().Workers) != 0 {
		t.Fatal("nil attribution must report empty")
	}
	b := NewAttribution(1)
	b.ObserveAccepted(ArrivalSample{Worker: 7})
	b.ObserveIgnored(ArrivalSample{Worker: -1})
	if w := b.Report().Workers[0]; w.Chosen != 0 || w.Ignored != 0 {
		t.Fatalf("out-of-range observations must be dropped: %+v", w)
	}
}

func TestAttributionSampleCap(t *testing.T) {
	a := NewAttribution(1)
	for i := 0; i < maxAttrSamples+100; i++ {
		a.ObserveAccepted(ArrivalSample{Worker: 0, Step: i, Arrival: time.Millisecond})
	}
	w := a.Report().Workers[0]
	if w.Chosen != maxAttrSamples+100 {
		t.Fatalf("chosen = %d, counters must keep counting past the cap", w.Chosen)
	}
	if len(a.samples[0]) != maxAttrSamples {
		t.Fatalf("samples = %d, want capped at %d", len(a.samples[0]), maxAttrSamples)
	}
}

func TestAttributionTable(t *testing.T) {
	a := NewAttribution(2)
	a.ObserveAccepted(ArrivalSample{Worker: 0, Compute: 2 * time.Millisecond, Arrival: 3 * time.Millisecond})
	out := a.Report().Table().String()
	for _, want := range []string{"straggler attribution", "worker", "compute p50", "arrival p95", "compute share"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table misses %q:\n%s", want, out)
		}
	}
	// Worker 1 never delivered: its timing columns render as "-".
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if last := lines[len(lines)-1]; !strings.Contains(last, "-") {
		t.Fatalf("empty worker row should use placeholders: %q", last)
	}
}

func TestAttributionConcurrent(t *testing.T) {
	a := NewAttribution(4)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				a.ObserveAccepted(ArrivalSample{Worker: g, Step: i, Arrival: time.Millisecond})
				a.ObserveIgnored(ArrivalSample{Worker: g, Step: i})
				_ = a.Report()
			}
		}()
	}
	wg.Wait()
	for _, w := range a.Report().Workers {
		if w.Chosen != 200 || w.Ignored != 200 {
			t.Fatalf("lost observations under concurrency: %+v", w)
		}
	}
}
