// Package trace records and summarizes experiment metrics: per-step
// records from training runs, aggregate statistics (mean, percentiles),
// and rendering of result series as aligned ASCII tables or CSV — the
// output surface for every figure reproduction in this repository.
package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// StepRecord captures one training step.
type StepRecord struct {
	Step int
	// Available is the number of non-straggling workers the master used.
	Available int
	// Chosen is |I|, the decoded worker set size.
	Chosen int
	// RecoveredFraction is the fraction of dataset partitions represented
	// in the recovered gradient ĝ.
	RecoveredFraction float64
	// Partitions lists the recovered partition indices (sorted); nil when
	// the producer does not track them.
	Partitions []int
	// Alive is the number of workers the producer believed reachable when
	// the step's gather ended (0 when the producer does not track
	// liveness, e.g. the in-process engine where workers cannot die).
	Alive int
	// Degraded reports that the gather shrank its wait target below the
	// configured one because too few workers were alive — the graceful-
	// degradation path of the fault-tolerant cluster runtime.
	Degraded bool
	// Folded counts straggler gradients from earlier steps that were
	// folded into the parameters as a staleness correction while this
	// step gathered (0 outside the pipelined bounded-staleness mode).
	Folded int
	// Loss is the training loss after the update.
	Loss float64
	// Accuracy is the training accuracy after the update (0 when the
	// workload is not a classifier or the producer does not track it).
	Accuracy float64
	// Elapsed is the simulated (or measured) wall time of the step.
	Elapsed time.Duration
}

// Run accumulates the records of one training run.
type Run struct {
	Records []StepRecord
}

// Append adds a record.
func (r *Run) Append(rec StepRecord) { r.Records = append(r.Records, rec) }

// Steps returns the number of recorded steps.
func (r *Run) Steps() int { return len(r.Records) }

// TotalTime returns the summed per-step elapsed time.
func (r *Run) TotalTime() time.Duration {
	var t time.Duration
	for _, rec := range r.Records {
		t += rec.Elapsed
	}
	return t
}

// MeanStepTime returns TotalTime / Steps (0 for an empty run).
func (r *Run) MeanStepTime() time.Duration {
	if len(r.Records) == 0 {
		return 0
	}
	return r.TotalTime() / time.Duration(len(r.Records))
}

// MeanRecovered returns the mean recovered fraction across steps.
func (r *Run) MeanRecovered() float64 {
	if len(r.Records) == 0 {
		return 0
	}
	s := 0.0
	for _, rec := range r.Records {
		s += rec.RecoveredFraction
	}
	return s / float64(len(r.Records))
}

// PartitionInclusion returns, for each partition index in [0, n), the
// fraction of steps whose recovered gradient covered it. Records without
// partition tracking contribute nothing.
func (r *Run) PartitionInclusion(n int) []float64 {
	out := make([]float64, n)
	if len(r.Records) == 0 {
		return out
	}
	for _, rec := range r.Records {
		for _, d := range rec.Partitions {
			if d >= 0 && d < n {
				out[d]++
			}
		}
	}
	for i := range out {
		out[i] /= float64(len(r.Records))
	}
	return out
}

// TotalFolded sums the per-step counts of late straggler gradients folded
// in as staleness corrections (0 outside bounded-staleness runs).
func (r *Run) TotalFolded() int {
	n := 0
	for _, rec := range r.Records {
		n += rec.Folded
	}
	return n
}

// DegradedSteps counts the steps whose gather ran in degraded mode
// (fewer live workers than the configured wait target).
func (r *Run) DegradedSteps() int {
	n := 0
	for _, rec := range r.Records {
		if rec.Degraded {
			n++
		}
	}
	return n
}

// LatencySummary holds step-latency order statistics of a run.
type LatencySummary struct {
	P50 time.Duration
	P95 time.Duration
	P99 time.Duration
}

func (s LatencySummary) String() string {
	return fmt.Sprintf("p50=%v p95=%v p99=%v",
		s.P50.Round(time.Microsecond), s.P95.Round(time.Microsecond), s.P99.Round(time.Microsecond))
}

// LatencySummary returns the p50/p95/p99 of the per-step elapsed times
// (all zero for an empty run).
func (r *Run) LatencySummary() LatencySummary {
	if len(r.Records) == 0 {
		return LatencySummary{}
	}
	xs := make([]float64, len(r.Records))
	for i, rec := range r.Records {
		xs[i] = float64(rec.Elapsed)
	}
	return LatencySummary{
		P50: time.Duration(Percentile(xs, 50)),
		P95: time.Duration(Percentile(xs, 95)),
		P99: time.Duration(Percentile(xs, 99)),
	}
}

// FinalLoss returns the last recorded loss (NaN for an empty run).
func (r *Run) FinalLoss() float64 {
	if len(r.Records) == 0 {
		return math.NaN()
	}
	return r.Records[len(r.Records)-1].Loss
}

// Losses returns the loss series.
func (r *Run) Losses() []float64 {
	out := make([]float64, len(r.Records))
	for i, rec := range r.Records {
		out[i] = rec.Loss
	}
	return out
}

// Summary statistics ------------------------------------------------------

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Stddev returns the population standard deviation of xs.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using linear
// interpolation between order statistics. Empty input yields NaN.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MeanDuration averages durations (0 for empty input).
func MeanDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var s time.Duration
	for _, d := range ds {
		s += d
	}
	return s / time.Duration(len(ds))
}

// Table rendering ----------------------------------------------------------

// Table is a simple experiment-result table with a caption, column headers
// and string cells.
type Table struct {
	Caption string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given caption and headers.
func NewTable(caption string, headers ...string) *Table {
	return &Table{Caption: caption, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case time.Duration:
			row[i] = v.Round(time.Millisecond).String()
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e9 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.4g", v)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Caption != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Caption)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (no quoting — callers
// must keep cells comma-free, which all numeric tables here do).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Headers, ","))
	b.WriteByte('\n')
	for _, row := range t.rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}
