// Package isgc is the public API of this repository: an implementation of
// Ignore-Straggler Gradient Coding (IS-GC) from "On Arbitrary Ignorance of
// Stragglers with Gradient Coding" (Su, Sukhnandan, Li — ICDCS 2023).
//
// IS-GC lets a distributed-SGD master recover as much of the full gradient
// as possible from an *arbitrary* subset of workers: every worker uploads
// the plain sum of the gradients on its c dataset partitions, and the
// master selects a maximum set of mutually non-conflicting workers (a
// maximum independent set of the conflict graph restricted to the
// available workers) whose coded gradients it adds up.
//
// The package exposes the three placement schemes of the paper — FR
// (fractional repetition), CR (cyclic repetition), and HR (hybrid
// repetition, which generalizes both) — with their linear-time exact
// decoders. Worker sets use plain []int at this boundary for ease of use.
//
// For end-to-end training, straggler simulation, the classic-GC baseline,
// and the experiment harness reproducing the paper's figures, see the
// internal packages (engine, cluster, experiments) and the binaries in
// cmd/; examples/ shows complete programs.
package isgc

import (
	"fmt"

	"isgc/internal/analysis"
	"isgc/internal/bitset"
	core "isgc/internal/isgc"
	"isgc/internal/placement"
)

// Scheme is an IS-GC coding scheme: a dataset placement plus its decoder.
// Create one with NewFR, NewCR, or NewHR. A Scheme is not safe for
// concurrent use; the underlying placement is immutable and cheap to wrap
// repeatedly with different seeds.
type Scheme struct {
	inner *core.Scheme
}

// NewFR builds an IS-GC scheme over fractional repetition FR(n, c):
// workers are divided into n/c groups, every worker in a group stores the
// same c partitions. Requires c | n.
func NewFR(n, c int, seed int64) (*Scheme, error) {
	p, err := placement.FR(n, c)
	if err != nil {
		return nil, err
	}
	return &Scheme{inner: core.New(p, seed)}, nil
}

// NewCR builds an IS-GC scheme over cyclic repetition CR(n, c): worker i
// stores partitions {i, …, i+c-1} mod n. Any 1 ≤ c ≤ n works.
func NewCR(n, c int, seed int64) (*Scheme, error) {
	p, err := placement.CR(n, c)
	if err != nil {
		return nil, err
	}
	return &Scheme{inner: core.New(p, seed)}, nil
}

// NewHR builds an IS-GC scheme over hybrid repetition HR(n, c1, c2) with g
// groups (g | n): c1 placement rows follow the within-group cyclic pattern
// and c2 rows follow the global CR pattern, trading off between FR (better
// recovery) and CR (more flexible c). Valid range per Theorem 6:
// c ≤ n/g ≤ min(2c-1, c+c1) where c = c1+c2; c1 = 0 degenerates to CR.
func NewHR(n, c1, c2, g int, seed int64) (*Scheme, error) {
	p, err := placement.HR(n, c1, c2, g)
	if err != nil {
		return nil, err
	}
	return &Scheme{inner: core.New(p, seed)}, nil
}

// N returns the number of workers (which equals the number of partitions).
func (s *Scheme) N() int { return s.inner.Placement().N() }

// C returns the number of partitions stored per worker.
func (s *Scheme) C() int { return s.inner.Placement().C() }

// Partitions returns the partitions stored on worker i.
func (s *Scheme) Partitions(i int) []int { return s.inner.Placement().Partitions(i) }

// Conflicts reports whether workers u and v share a partition (and hence
// cannot both contribute their coded gradients to ĝ).
func (s *Scheme) Conflicts(u, v int) bool { return s.inner.Placement().Conflicts(u, v) }

// String describes the scheme, e.g. "CR(n=8,c=3)".
func (s *Scheme) String() string { return s.inner.Placement().String() }

// Decode selects the workers whose coded gradients should be summed, given
// the available (non-straggling) workers — a maximum independent set of
// the conflict graph restricted to available. Out-of-range ids are
// ignored; the result is sorted.
func (s *Scheme) Decode(available []int) []int {
	return s.inner.Decode(bitset.FromSlice(available)).Slice()
}

// Recovered returns the sorted partition indices covered by the chosen
// worker set (the I of ĝ = Σ_{i∈I} g_i after mapping workers to their
// partitions).
func (s *Scheme) Recovered(chosen []int) []int {
	return s.inner.Recovered(bitset.FromSlice(chosen)).Slice()
}

// RecoveredFraction returns the fraction of all partitions recovered when
// decoding the given availability set: 1.0 means the full gradient.
func (s *Scheme) RecoveredFraction(available []int) float64 {
	return s.inner.RecoveredFraction(bitset.FromSlice(available))
}

// AlphaBounds returns the guaranteed [min, max] number of non-conflicting
// workers the decoder selects when w workers are available (Theorems 10
// and 11 of the paper; scheme-aware for HR).
func (s *Scheme) AlphaBounds(w int) (lower, upper int) {
	return s.inner.Placement().AlphaBounds(w)
}

// EncodeLocal computes a worker's coded upload from the gradients of its
// own c partitions (index-aligned with Partitions(worker)): the plain sum.
func (s *Scheme) EncodeLocal(worker int, local [][]float64) ([]float64, error) {
	return s.inner.EncodePartial(worker, local)
}

// Aggregate sums the coded gradients of the chosen workers into the
// recovered gradient ĝ and returns it together with the covered partition
// indices. coded is indexed by worker id; entries for workers outside
// chosen may be nil.
func (s *Scheme) Aggregate(chosen []int, coded [][]float64) (ghat []float64, parts []int, err error) {
	g, p, err := s.inner.Aggregate(bitset.FromSlice(chosen), coded)
	if err != nil {
		return nil, nil, err
	}
	return g, p.Slice(), nil
}

// DecodeAndAggregate is the full master-side step: Decode then Aggregate.
func (s *Scheme) DecodeAndAggregate(available []int, coded [][]float64) (ghat []float64, parts, chosen []int, err error) {
	g, p, ch, err := s.inner.DecodeAndAggregate(bitset.FromSlice(available), coded)
	if err != nil {
		return nil, nil, nil, err
	}
	return g, p.Slice(), ch.Slice(), nil
}

// ExpectedRecovery returns E[recovered fraction] when a uniformly random
// w-subset of workers is available: exact by enumeration for small
// instances, Monte-Carlo (20000 draws, fixed seed) otherwise. This is the
// curve of Figs. 12(a)/13(a) without running any training.
func (s *Scheme) ExpectedRecovery(w int) (float64, error) {
	return analysis.ExpectedRecovery(s.inner.Placement(), w, 200000, 20000, 1)
}

// Verify checks a user-supplied worker selection: it returns an error if
// chosen contains conflicting or out-of-range workers, and otherwise the
// number of partitions it recovers. Useful when integrating a custom
// decoder.
func (s *Scheme) Verify(chosen []int) (int, error) {
	set := bitset.FromSlice(chosen)
	n := s.N()
	bad := -1
	set.Range(func(v int) bool {
		if v >= n {
			bad = v
			return false
		}
		return true
	})
	if bad >= 0 {
		return 0, fmt.Errorf("isgc: worker %d out of range [0,%d)", bad, n)
	}
	if !s.inner.Placement().ConflictGraph().IsIndependent(set) {
		return 0, fmt.Errorf("isgc: chosen workers conflict (share a partition)")
	}
	return s.inner.Recovered(set).Len(), nil
}
