package main

import (
	"testing"
	"time"

	"isgc/internal/cliconfig"
	"isgc/internal/straggler"
)

func TestRunRejectsBadScheme(t *testing.T) {
	spec := cliconfig.SchemeSpec{Scheme: "bogus", N: 4, C: 2}
	if err := run("127.0.0.1:1", 0, spec, cliconfig.DefaultData(1), 0, "binary", 0, 1, nil, 0, 0, "", "", "", "info", "", false); err == nil {
		t.Fatal("expected error for unknown scheme")
	}
}

func TestRunRejectsBadWorkerID(t *testing.T) {
	spec := cliconfig.SchemeSpec{Scheme: "cr", N: 4, C: 2}
	if err := run("127.0.0.1:1", 7, spec, cliconfig.DefaultData(1), 0, "binary", 0, 1, nil, 0, 0, "", "", "", "info", "", false); err == nil {
		t.Fatal("expected error for out-of-range id")
	}
	if err := run("127.0.0.1:1", -1, spec, cliconfig.DefaultData(1), 0, "binary", 0, 1, nil, 0, 0, "", "", "", "info", "", false); err == nil {
		t.Fatal("expected error for negative id")
	}
}

func TestRunRejectsIndivisibleDataset(t *testing.T) {
	spec := cliconfig.SchemeSpec{Scheme: "cr", N: 7, C: 2}
	d := cliconfig.DefaultData(1)
	d.Samples = 240 // 240 % 7 != 0
	if err := run("127.0.0.1:1", 0, spec, d, 0, "binary", 0, 1, nil, 0, 0, "", "", "", "info", "", false); err == nil {
		t.Fatal("expected partitioning error")
	}
}

func TestRunFailsWithoutMaster(t *testing.T) {
	// Valid config, nothing listening: the dial must fail (with retries
	// bounded by the worker's dial timeout).
	spec := cliconfig.SchemeSpec{Scheme: "cr", N: 4, C: 2}
	start := time.Now()
	if err := run("127.0.0.1:1", 0, spec, cliconfig.DefaultData(1), 0, "binary", 0, 1, nil, 0, 0, "", "", "", "info", "", false); err == nil {
		t.Fatal("expected dial error")
	}
	if time.Since(start) > 30*time.Second {
		t.Fatal("dial retry ran unbounded")
	}
}

func TestBuildFault(t *testing.T) {
	if f := buildFault(-1, 0, -1); f != nil {
		t.Fatalf("healthy worker must have no fault model, got %v", f)
	}
	f := buildFault(5, 0.25, 2)
	if f == nil {
		t.Fatal("expected a composed fault model")
	}
	want := "compose(crashAt(5),dropWithProb(0.25),disconnectAt(2))"
	if f.String() != want {
		t.Fatalf("fault = %q, want %q", f.String(), want)
	}
	if buildFault(0, 0, -1).String() != "compose(crashAt(0))" {
		t.Fatal("crash-at 0 must be honored (crash on the first step)")
	}
	_ = straggler.Fault(f) // the CLI hands the cluster a straggler.Fault
}
