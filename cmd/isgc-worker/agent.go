// Fleet-agent mode: instead of serving one master with flag-derived
// partitions, the process registers with a control plane's fleet listener
// and serves whatever worker assignments the scheduler pushes — including
// re-assignments with a new worker id after a live re-placement.
package main

import (
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"isgc/internal/cliconfig"
	"isgc/internal/controlplane"
)

func runAgent(fleetAddr, name, eventsPath, logLevel string) error {
	if name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "agent"
		}
		name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	log, closer, err := cliconfig.OpenEventLog(eventsPath, logLevel)
	if err != nil {
		return err
	}
	if closer != nil {
		defer closer.Close()
	}
	agent, err := controlplane.NewAgent(controlplane.AgentConfig{
		FleetAddr: fleetAddr,
		Name:      name,
		Events:    log,
	})
	if err != nil {
		return err
	}
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	go func() {
		<-sigCh
		agent.Stop()
	}()
	fmt.Printf("agent %s: joining fleet %s\n", name, fleetAddr)
	return agent.Run()
}
