// Command isgc-worker runs one worker of the TCP cluster runtime. It must
// agree with the master on -n, -c, -scheme, -batch, -samples, and -seed so
// partition replicas see identical mini-batches (the paper's controlled-
// seed requirement for summable coded gradients).
//
// A straggler can be simulated with -delay, e.g. -delay 500ms makes this
// worker sleep ~Exp(500ms) before every upload. Worker *death* is simulated
// with the fault flags: -crash-at kills the worker at a step, -drop-prob
// loses each upload with a probability, and -disconnect-at tears the
// connection down once (the worker then redials within -reconnect and
// re-registers). Heartbeats (-heartbeat) let the master tell a slow worker
// from a hung one.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"isgc/internal/admin"
	"isgc/internal/buildinfo"
	"isgc/internal/checkpoint"
	"isgc/internal/cliconfig"
	"isgc/internal/cluster"
	"isgc/internal/events"
	"isgc/internal/metrics"
	"isgc/internal/model"
	"isgc/internal/obs"
	"isgc/internal/straggler"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7000", "master address")
		id         = flag.Int("id", 0, "worker id in [0, n)")
		n          = flag.Int("n", 4, "number of workers / partitions")
		c          = flag.Int("c", 2, "partitions per worker")
		scheme     = flag.String("scheme", "cr", "placement scheme: fr, cr, or hr")
		c1         = flag.Int("c1", 1, "HR upper rows (scheme=hr)")
		g          = flag.Int("g", 2, "HR group count (scheme=hr)")
		batch      = flag.Int("batch", 8, "per-partition batch size (must match master)")
		seed       = flag.Int64("seed", 42, "shared seed (must match master)")
		samples    = flag.Int("samples", 240, "synthetic dataset size (must match master)")
		delay      = flag.Duration("delay", 0, "mean of an exponential straggler delay before each upload (0 = none)")
		wire       = flag.String("wire", "binary", "wire codec for the gradient/params hot path: binary or gob")
		computePar = flag.Int("compute-par", 0, "gradient compute shards (0 = auto/GOMAXPROCS, 1 = sequential)")
		shards     = flag.Int("gather-shards", 1, "split each gradient upload across this many parallel lanes (proposes the binaryv2 codec; the master may grant fewer; 1 = single stream)")

		crashAt      = flag.Int("crash-at", -1, "crash (die permanently) at this step (-1 = never)")
		dropProb     = flag.Float64("drop-prob", 0, "probability of losing each step's gradient upload")
		disconnectAt = flag.Int("disconnect-at", -1, "tear the connection down at this step and rejoin (-1 = never)")
		reconnect    = flag.Duration("reconnect", 10*time.Second, "redial budget after a lost connection (0 disables rejoin)")
		heartbeat    = flag.Duration("heartbeat", time.Second, "liveness ping interval (negative disables)")
		metricsAddr  = flag.String("metrics-addr", "", "serve /metrics, /healthz, /debug/pprof on this address (empty disables)")
		profileDir   = flag.String("profile-dir", "", "continuous profiling: periodically capture CPU+heap pprof profiles into this directory (empty disables)")

		eventsPath = flag.String("events", "", "write a JSONL structured event log to this path (\"-\" = stderr)")
		logLevel   = flag.String("log-level", "info", "minimum event level: debug, info, warn, or error")

		checkpointDir = flag.String("checkpoint-dir", "", "persist this worker's resumable state under <dir>/worker-<id> on graceful shutdown (empty disables; may be shared with the master's -checkpoint-dir)")
		restore       = flag.Bool("restore", false, "resume RNG streams and step counter from the checkpoint before registering")

		fleet     = flag.String("fleet", "", "join a control plane's fleet at this address instead of serving one master (the plane pushes assignments; most other flags are then ignored)")
		agentName = flag.String("agent-name", "", "fleet agent name (default: host-pid)")

		version = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Get())
		return
	}
	if *fleet != "" {
		if err := runAgent(*fleet, *agentName, *eventsPath, *logLevel); err != nil {
			fmt.Fprintln(os.Stderr, "isgc-worker:", err)
			os.Exit(1)
		}
		return
	}
	spec := cliconfig.SchemeSpec{Scheme: *scheme, N: *n, C: *c, C1: *c1, G: *g}
	dspec := cliconfig.DefaultData(*seed)
	dspec.Samples = *samples
	dspec.Batch = *batch
	fault := buildFault(*crashAt, *dropProb, *disconnectAt)
	if err := run(*addr, *id, spec, dspec, *delay, *wire, *computePar, *shards, fault, *reconnect, *heartbeat, *metricsAddr, *profileDir, *eventsPath, *logLevel, *checkpointDir, *restore); err != nil {
		fmt.Fprintln(os.Stderr, "isgc-worker:", err)
		os.Exit(1)
	}
}

// buildFault assembles the fault model the flags describe (nil when the
// worker is healthy).
func buildFault(crashAt int, dropProb float64, disconnectAt int) straggler.Fault {
	var fs straggler.Compose
	if crashAt >= 0 {
		fs = append(fs, straggler.CrashAt{Step: crashAt})
	}
	if dropProb > 0 {
		fs = append(fs, straggler.DropWithProb{P: dropProb})
	}
	if disconnectAt >= 0 {
		fs = append(fs, straggler.DisconnectAt{Step: disconnectAt})
	}
	if len(fs) == 0 {
		return nil
	}
	return fs
}

func run(addr string, id int, spec cliconfig.SchemeSpec, dspec cliconfig.DataSpec, delay time.Duration, wire string, computePar, gatherShards int, fault straggler.Fault, reconnect, heartbeat time.Duration, metricsAddr, profileDir, eventsPath, logLevel, checkpointDir string, restore bool) error {
	p, err := spec.Build()
	if err != nil {
		return err
	}
	if id < 0 || id >= spec.N {
		return fmt.Errorf("worker id %d out of range [0,%d)", id, spec.N)
	}
	data, err := dspec.BuildDataset()
	if err != nil {
		return err
	}
	pids := p.Partitions(id)
	loaders, err := dspec.BuildLoaders(data, spec.N, pids)
	if err != nil {
		return err
	}
	var delayModel straggler.Model
	if delay > 0 {
		delayModel = straggler.Exponential{Mean: delay}
	}
	var wm *cluster.WorkerMetrics
	var reg *metrics.Registry
	if metricsAddr != "" {
		reg = metrics.NewRegistry()
		wm = cluster.NewWorkerMetrics(reg)
	}
	var ev *events.Log
	if eventsPath != "" || metricsAddr != "" {
		log, closer, err := cliconfig.OpenEventLog(eventsPath, logLevel)
		if err != nil {
			return err
		}
		if closer != nil {
			defer closer.Close()
		}
		ev = log
	}
	var store *checkpoint.Store
	if checkpointDir != "" {
		// Each worker gets its own subdirectory, so one -checkpoint-dir can
		// be shared by the master and the whole fleet.
		store, err = checkpoint.NewStore(filepath.Join(checkpointDir, fmt.Sprintf("worker-%d", id)), checkpoint.DefaultRetain)
		if err != nil {
			return err
		}
	}
	w, err := cluster.NewWorker(cluster.WorkerConfig{
		Addr:              addr,
		ID:                id,
		Partitions:        pids,
		Loaders:           loaders,
		Model:             model.SoftmaxRegression{Features: dspec.Features, Classes: dspec.Classes},
		Encode:            cluster.SumEncoder(),
		Delay:             delayModel,
		Wire:              wire,
		ComputePar:        computePar,
		GatherShards:      gatherShards,
		DelaySeed:         dspec.Seed + int64(id),
		Fault:             fault,
		FaultSeed:         dspec.Seed + int64(id),
		HeartbeatInterval: heartbeat,
		ReconnectTimeout:  reconnect,
		Metrics:           wm,
		Events:            ev,
		Checkpoint:        store,
		Restore:           restore,
	})
	if err != nil {
		return err
	}
	// SIGINT/SIGTERM → graceful shutdown: the worker leaves the fleet,
	// persists its resumable state (when -checkpoint-dir is set), and the
	// process exits 0.
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	go func() {
		<-sigCh
		w.Stop()
	}()
	// The worker's own observability surface mirrors the master's: the
	// admin endpoint gains /api/timeseries and /debug/dash over the local
	// registry, and -profile-dir captures pprof profiles continuously.
	var tsStore *obs.Store
	if metricsAddr != "" {
		tsStore = obs.NewStore(obs.StoreConfig{})
		tsStore.AddSource("worker", reg, nil)
		tsStore.Start()
		defer tsStore.Stop()
	}
	var profiler *obs.Profiler
	if profileDir != "" {
		profiler, err = obs.NewProfiler(obs.ProfilerConfig{Dir: profileDir})
		if err != nil {
			return fmt.Errorf("profiling: %w", err)
		}
		profiler.Start()
		defer profiler.Stop()
	}
	if metricsAddr != "" {
		adm := admin.New(admin.Config{
			Addr:       metricsAddr,
			Registry:   reg,
			Health:     func() any { return w.Health() },
			Events:     ev,
			TimeSeries: tsStore,
			Profiles:   profiler,
		})
		if err := adm.Start(); err != nil {
			return fmt.Errorf("metrics endpoint: %w", err)
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = adm.Shutdown(ctx)
		}()
		fmt.Printf("worker %d: metrics on %s/metrics\n", id, adm.URL())
	}
	fmt.Printf("worker %d: partitions %v, connected to %s\n", id, pids, addr)
	steps, err := w.Run()
	if err != nil {
		return err
	}
	fmt.Printf("worker %d: served %d steps\n", id, steps)
	return nil
}
