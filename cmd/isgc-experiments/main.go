// Command isgc-experiments regenerates every figure of the paper's
// evaluation section from this repository's implementation.
//
// Usage:
//
//	isgc-experiments -fig all            # everything (default)
//	isgc-experiments -fig 11a            # Fig. 11(a): step time, delay 1.5s
//	isgc-experiments -fig 11b            # Fig. 11(b): step time, delay 3s
//	isgc-experiments -fig 12             # Fig. 12(a-d): training comparison
//	isgc-experiments -fig 13             # Fig. 13(a-b): HR trade-off
//	isgc-experiments -fig bounds         # Theorems 10-11 validation table
//	isgc-experiments -fig attribution    # straggler-attribution timeline table
//	isgc-experiments -fig 12 -trials 10  # paper-scale averaging
//	isgc-experiments -fig 12 -csv        # machine-readable output
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"isgc/internal/admin"
	"isgc/internal/buildinfo"
	"isgc/internal/cliconfig"
	"isgc/internal/events"
	"isgc/internal/experiments"
	"isgc/internal/metrics"
	"isgc/internal/obs"
	"isgc/internal/placement"
	"isgc/internal/trace"
)

func main() {
	fig := flag.String("fig", "all", "which figure to regenerate: 11a, 11b, 12, 13, bounds, ablations, theory, hetero, attribution, staleness, all")
	trials := flag.Int("trials", 0, "override the number of trials per data point (0 = default)")
	steps := flag.Int("steps", 0, "override simulated steps for Fig. 11 (0 = default)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	seed := flag.Int64("seed", 0, "override the experiment seed (0 = default)")
	show := flag.String("show", "", `print a placement and its conflict graph instead of running experiments; format "fr:n:c", "cr:n:c", or "hr:n:c1:c2:g", e.g. -show hr:8:2:2:2`)
	workload := flag.String("workload", "", `Fig. 12 training workload: "softmax" (default) or "mlp"`)
	computePar := flag.Int("compute-par", 0, "engine gradient compute shards (0 = sequential default, >1 concurrent partitions; results are bit-identical)")
	metricsAddr := flag.String("metrics-addr", "", "serve /debug/pprof and /metrics on this address while experiments run (empty disables)")
	profileDir := flag.String("profile-dir", "", "continuous profiling: periodically capture CPU+heap pprof profiles into this directory (empty disables)")
	eventsPath := flag.String("events", "", "write a JSONL structured event log to this path (\"-\" = stderr)")
	logLevel := flag.String("log-level", "info", "minimum event level: debug, info, warn, or error")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Get())
		return
	}

	// Paper-scale runs (-trials 10) take minutes; continuous profiling
	// leaves a capture trail even when nobody was watching live.
	var profiler *obs.Profiler
	if *profileDir != "" {
		p, err := obs.NewProfiler(obs.ProfilerConfig{Dir: *profileDir})
		if err != nil {
			fmt.Fprintln(os.Stderr, "isgc-experiments: profiling:", err)
			os.Exit(1)
		}
		p.Start()
		defer p.Stop()
		profiler = p
		fmt.Fprintf(os.Stderr, "profiling: capturing cpu+heap to %s\n", p.Dir())
	}
	if *metricsAddr != "" {
		// A live pprof endpoint makes long runs inspectable without
		// restarting.
		adm := admin.New(admin.Config{
			Addr:     *metricsAddr,
			Registry: metrics.NewRegistry(),
			Profiles: profiler,
		})
		if err := adm.Start(); err != nil {
			fmt.Fprintln(os.Stderr, "isgc-experiments: metrics endpoint:", err)
			os.Exit(1)
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = adm.Shutdown(ctx)
		}()
		fmt.Fprintf(os.Stderr, "profiling: %s/debug/pprof/\n", adm.URL())
	}

	if *show != "" {
		if err := runShow(*show); err != nil {
			fmt.Fprintln(os.Stderr, "isgc-experiments:", err)
			os.Exit(1)
		}
		return
	}
	var ev *events.Log
	if *eventsPath != "" {
		log, closer, err := cliconfig.OpenEventLog(*eventsPath, *logLevel)
		if err != nil {
			fmt.Fprintln(os.Stderr, "isgc-experiments:", err)
			os.Exit(1)
		}
		if closer != nil {
			defer closer.Close()
		}
		ev = log
	}
	if err := run(*fig, *trials, *steps, *seed, *csv, *workload, *computePar, ev); err != nil {
		fmt.Fprintln(os.Stderr, "isgc-experiments:", err)
		os.Exit(1)
	}
}

// runShow renders a placement grid and conflict matrix (the repo's version
// of the paper's Figs. 2, 4, and 7).
func runShow(spec string) error {
	parts := strings.Split(spec, ":")
	atoi := func(s string) (int, error) { return strconv.Atoi(s) }
	var p *placement.Placement
	var err error
	switch {
	case len(parts) == 3 && (parts[0] == "fr" || parts[0] == "cr"):
		n, err1 := atoi(parts[1])
		c, err2 := atoi(parts[2])
		if err1 != nil || err2 != nil {
			return fmt.Errorf("bad -show %q: n and c must be integers", spec)
		}
		if parts[0] == "fr" {
			p, err = placement.FR(n, c)
		} else {
			p, err = placement.CR(n, c)
		}
	case len(parts) == 5 && parts[0] == "hr":
		n, err1 := atoi(parts[1])
		c1, err2 := atoi(parts[2])
		c2, err3 := atoi(parts[3])
		g, err4 := atoi(parts[4])
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return fmt.Errorf("bad -show %q: all HR fields must be integers", spec)
		}
		p, err = placement.HR(n, c1, c2, g)
	default:
		return fmt.Errorf("bad -show %q (want fr:n:c, cr:n:c, or hr:n:c1:c2:g)", spec)
	}
	if err != nil {
		return err
	}
	fmt.Println(p.Render())
	fmt.Println(p.RenderConflicts())
	return nil
}

func run(fig string, trials, steps int, seed int64, csv bool, workload string, computePar int, ev *events.Log) error {
	emit := func(tabs ...*trace.Table) {
		for _, t := range tabs {
			if csv {
				fmt.Printf("# %s\n%s\n", t.Caption, t.CSV())
			} else {
				fmt.Println(t.String())
			}
		}
	}
	want := func(name string) bool { return fig == "all" || fig == name }
	matched := false

	if want("11a") {
		matched = true
		cfg := experiments.DefaultFig11a()
		applyFig11Overrides(&cfg, steps, seed)
		_, tab, err := experiments.Fig11(cfg)
		if err != nil {
			return err
		}
		emit(tab)
	}
	if want("11b") {
		matched = true
		cfg := experiments.DefaultFig11b()
		applyFig11Overrides(&cfg, steps, seed)
		_, tab, err := experiments.Fig11(cfg)
		if err != nil {
			return err
		}
		emit(tab)
	}
	if want("12") {
		matched = true
		cfg := experiments.DefaultFig12()
		if trials > 0 {
			cfg.Trials = trials
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		cfg.Workload = workload
		cfg.ComputePar = computePar
		_, tabs, err := experiments.Fig12(cfg)
		if err != nil {
			return err
		}
		emit(tabs...)
	}
	if want("13") {
		matched = true
		cfg := experiments.DefaultFig13()
		if trials > 0 {
			cfg.Trials = trials
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		cfg.ComputePar = computePar
		_, _, tabs, err := experiments.Fig13(cfg)
		if err != nil {
			return err
		}
		emit(tabs...)
	}
	if want("bounds") {
		matched = true
		cfg := experiments.DefaultBounds()
		if trials > 0 {
			cfg.Trials = trials
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		_, tab, err := experiments.Bounds(cfg)
		if err != nil {
			return err
		}
		emit(tab)
	}
	if want("ablations") {
		matched = true
		cfg := experiments.DefaultAblations()
		if trials > 0 {
			cfg.Trials = trials
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		cfg.ComputePar = computePar
		_, gatherTab, err := experiments.GatherPolicies(cfg)
		if err != nil {
			return err
		}
		_, endureTab, err := experiments.EnduringStraggler(cfg)
		if err != nil {
			return err
		}
		_, decodeTab, err := experiments.DecoderQuality(12, 3, 500, cfg.Seed)
		if err != nil {
			return err
		}
		biasCfg := experiments.DefaultBias()
		if trials > 0 {
			biasCfg.Trials = trials
		}
		if seed != 0 {
			biasCfg.Seed = seed
		}
		biasCfg.ComputePar = computePar
		_, biasTab, err := experiments.Bias(biasCfg)
		if err != nil {
			return err
		}
		_, hrTab, err := experiments.HRStructure(8, 4, 2, cfg.Seed)
		if err != nil {
			return err
		}
		emit(gatherTab, endureTab, decodeTab, biasTab, hrTab)
	}
	if want("theory") {
		matched = true
		cfg := experiments.DefaultTheory()
		if trials > 0 {
			cfg.Trials = trials
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		_, tab, err := experiments.Theory(cfg)
		if err != nil {
			return err
		}
		emit(tab)
	}
	if want("hetero") {
		matched = true
		cfg := experiments.DefaultHeterogeneity()
		if trials > 0 {
			cfg.Trials = trials
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		cfg.ComputePar = computePar
		_, tab, err := experiments.Heterogeneity(cfg)
		if err != nil {
			return err
		}
		emit(tab)
	}
	if want("staleness") {
		matched = true
		cfg := experiments.DefaultStaleness()
		if trials > 0 {
			cfg.Trials = trials
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		cfg.ComputePar = computePar
		_, tab, err := experiments.Staleness(cfg)
		if err != nil {
			return err
		}
		emit(tab)
	}
	if want("attribution") {
		matched = true
		cfg := experiments.DefaultAttribution()
		if steps > 0 {
			cfg.Steps = steps
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		cfg.Events = ev
		cfg.ComputePar = computePar
		_, tab, err := experiments.Attribution(cfg)
		if err != nil {
			return err
		}
		emit(tab)
	}
	if !matched {
		return fmt.Errorf("unknown -fig %q (want 11a, 11b, 12, 13, bounds, ablations, theory, hetero, attribution, staleness, or all)", fig)
	}
	return nil
}

func applyFig11Overrides(cfg *experiments.Fig11Config, steps int, seed int64) {
	if steps > 0 {
		cfg.Steps = steps
	}
	if seed != 0 {
		cfg.Seed = seed
	}
}
