package main

import (
	"strings"
	"testing"

	"isgc/internal/events"
	"isgc/internal/experiments"
)

func TestRunUnknownFig(t *testing.T) {
	if err := run("nope", 0, 0, 0, false, "", 0, nil); err == nil {
		t.Fatal("expected error for unknown -fig")
	}
}

func TestRunBounds(t *testing.T) {
	// bounds is the cheapest full runner; smoke the plumbing end to end.
	if err := run("bounds", 10, 0, 0, false, "", 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := run("bounds", 10, 0, 42, true, "", 0, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig11WithOverrides(t *testing.T) {
	if err := run("11a", 0, 20, 9, false, "", 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := run("11b", 0, 20, 9, true, "", 0, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig12(t *testing.T) {
	if err := run("12", 1, 0, 3, true, "", 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := run("12", 1, 0, 3, false, "bogus", 0, nil); err == nil {
		t.Fatal("expected error for unknown workload")
	}
}

func TestRunFig13(t *testing.T) {
	// computePar 2 exercises the pooled gradient path end to end; the
	// figure's numbers are bit-identical to the sequential default.
	if err := run("13", 1, 0, 3, true, "", 2, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunTheoryAndHetero(t *testing.T) {
	if err := run("theory", 30, 0, 0, false, "", 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := run("hetero", 1, 0, 0, true, "", 0, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunAblations(t *testing.T) {
	if err := run("ablations", 1, 0, 0, false, "", 0, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunShow(t *testing.T) {
	for _, good := range []string{"fr:4:2", "cr:7:3", "hr:8:2:2:2"} {
		if err := runShow(good); err != nil {
			t.Errorf("runShow(%q): %v", good, err)
		}
	}
	for _, bad := range []string{
		"", "xx:4:2", "fr:4", "fr:a:2", "fr:5:2", "hr:8:2:2", "hr:8:a:2:2", "cr:4:9",
	} {
		if err := runShow(bad); err == nil {
			t.Errorf("runShow(%q): expected error", bad)
		}
	}
}

func TestApplyFig11Overrides(t *testing.T) {
	cfg := experiments.DefaultFig11a()
	applyFig11Overrides(&cfg, 0, 0)
	if cfg.Steps != experiments.DefaultFig11a().Steps || cfg.Seed != experiments.DefaultFig11a().Seed {
		t.Fatal("zero overrides must keep defaults")
	}
	applyFig11Overrides(&cfg, 7, 13)
	if cfg.Steps != 7 || cfg.Seed != 13 {
		t.Fatalf("overrides not applied: %+v", cfg)
	}
}

func TestRunAttribution(t *testing.T) {
	ev := events.New(events.Config{RingSize: 64})
	if err := run("attribution", 0, 30, 5, false, "", 0, ev); err != nil {
		t.Fatal(err)
	}
	if ev.Total() == 0 {
		t.Fatal("attribution run emitted no events into the supplied log")
	}
	if err := run("attribution", 0, 30, 5, true, "", 0, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFigNameMatching(t *testing.T) {
	for _, name := range []string{"11a", "11b", "12", "13", "bounds", "ablations", "theory", "hetero", "attribution"} {
		if !strings.Contains("11a 11b 12 13 bounds ablations theory hetero attribution", name) {
			t.Fatalf("test list out of sync: %s", name)
		}
	}
}
