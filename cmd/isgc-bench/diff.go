// The diff subcommand compares two isgc-bench JSON reports:
//
//	isgc-bench diff [-fail-over 10] old.json new.json
//
// It prints a per-benchmark delta table (ns/op, B/op, allocs/op) with
// added/removed benchmarks called out, and with -fail-over N exits
// non-zero when any benchmark's ns/op regressed by more than N percent —
// the CI perf gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// benchDelta is one row of the diff: a benchmark present in either
// report, with percentage deltas where it exists in both.
type benchDelta struct {
	Name     string
	Old, New *Result
}

// pct returns the percentage change new vs old; +Inf when old is zero
// and new is not (a regression from nothing is always worth seeing).
func pct(oldV, newV float64) float64 {
	if oldV == 0 {
		if newV == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (newV - oldV) / oldV * 100
}

func loadReport(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Results) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results", path)
	}
	return &rep, nil
}

// diffReports joins two reports by benchmark name, old-report order
// first, then new-only benchmarks in new-report order.
func diffReports(oldRep, newRep *Report) []benchDelta {
	newBy := make(map[string]*Result, len(newRep.Results))
	for i := range newRep.Results {
		newBy[newRep.Results[i].Name] = &newRep.Results[i]
	}
	seen := make(map[string]bool, len(oldRep.Results))
	var rows []benchDelta
	for i := range oldRep.Results {
		r := &oldRep.Results[i]
		seen[r.Name] = true
		rows = append(rows, benchDelta{Name: r.Name, Old: r, New: newBy[r.Name]})
	}
	for i := range newRep.Results {
		r := &newRep.Results[i]
		if !seen[r.Name] {
			rows = append(rows, benchDelta{Name: r.Name, New: r})
		}
	}
	return rows
}

// fmtDelta renders a percentage delta column: signed, one decimal, with
// "new"/"gone" for benchmarks present on only one side.
func fmtDelta(d benchDelta, metric func(*Result) float64) string {
	switch {
	case d.Old == nil:
		return "new"
	case d.New == nil:
		return "gone"
	}
	oldV, newV := metric(d.Old), metric(d.New)
	if oldV < 0 || newV < 0 { // -benchmem missing on one side
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", pct(oldV, newV))
}

// metricDeltas renders indented rows for custom metrics both reports
// share (e.g. the loadgen's p95-ns or steps/sec) — these carry the
// interesting numbers for tools that report through the Metrics map
// rather than ns/op.
func metricDeltas(d benchDelta) []string {
	if len(d.Old.Metrics) == 0 || len(d.New.Metrics) == 0 {
		return nil
	}
	keys := make([]string, 0, len(d.Old.Metrics))
	for k := range d.Old.Metrics {
		if _, ok := d.New.Metrics[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	lines := make([]string, 0, len(keys))
	for _, k := range keys {
		oldV, newV := d.Old.Metrics[k], d.New.Metrics[k]
		lines = append(lines, fmt.Sprintf("  %-50s %12.1f %12.1f %+8.1f%%",
			k, oldV, newV, pct(oldV, newV)))
	}
	return lines
}

// runDiff prints the delta table and returns an error when -fail-over is
// set and any ns/op regression exceeds it.
func runDiff(oldPath, newPath string, failOver float64, out io.Writer) error {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		return err
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		return err
	}
	rows := diffReports(oldRep, newRep)
	fmt.Fprintf(out, "%-52s %12s %12s %9s %9s %9s\n",
		"BENCHMARK", "OLD ns/op", "NEW ns/op", "Δns/op", "ΔB/op", "Δallocs")
	var worst struct {
		name string
		pct  float64
	}
	for _, d := range rows {
		oldNs, newNs := "-", "-"
		if d.Old != nil {
			oldNs = fmt.Sprintf("%.1f", d.Old.NsPerOp)
		}
		if d.New != nil {
			newNs = fmt.Sprintf("%.1f", d.New.NsPerOp)
		}
		fmt.Fprintf(out, "%-52s %12s %12s %9s %9s %9s\n",
			d.Name, oldNs, newNs,
			fmtDelta(d, func(r *Result) float64 { return r.NsPerOp }),
			fmtDelta(d, func(r *Result) float64 { return r.BytesPerOp }),
			fmtDelta(d, func(r *Result) float64 { return r.AllocsPerOp }))
		if d.Old != nil && d.New != nil {
			for _, line := range metricDeltas(d) {
				fmt.Fprintln(out, line)
			}
			if p := pct(d.Old.NsPerOp, d.New.NsPerOp); p > worst.pct {
				worst.name, worst.pct = d.Name, p
			}
		}
	}
	if worst.name != "" {
		fmt.Fprintf(out, "worst ns/op regression: %s %+.1f%%\n", worst.name, worst.pct)
	}
	if failOver > 0 && worst.pct > failOver {
		return fmt.Errorf("%s regressed %.1f%% > %.1f%% threshold", worst.name, worst.pct, failOver)
	}
	return nil
}

// cmdDiff parses the diff subcommand's arguments and runs it.
func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	failOver := fs.Float64("fail-over", 0, "exit non-zero when any ns/op regression exceeds this percentage (0 disables)")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: isgc-bench diff [-fail-over PCT] old.json new.json")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	if fs.NArg() != 2 {
		fs.Usage()
		return fmt.Errorf("diff needs exactly two report files")
	}
	return runDiff(fs.Arg(0), fs.Arg(1), *failOver, os.Stdout)
}
