package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// sample is real `go test -bench -benchmem` output: header noise, plain
// and sub-benchmark lines, a custom MB/s metric, and the trailers.
const sample = `goos: linux
goarch: amd64
pkg: isgc
cpu: Intel(R) Xeon(R)
BenchmarkMLPGrad-8           	     100	  10523456 ns/op	 2661490 B/op	      10 allocs/op
BenchmarkMLPGradInto-8       	     120	   9381234 ns/op	       0 B/op	       0 allocs/op
BenchmarkMLPGradIntoSharded/par=4-8  	     130	   2881234 ns/op	       5 B/op	       0 allocs/op
BenchmarkDecodeCached/n=24   	 5000000	       231 ns/op
BenchmarkWireCodec/binary/encode-8   	    2000	    651234 ns/op	  855559 MB/s	       0 B/op	       0 allocs/op
PASS
ok  	isgc	12.345s
`

func TestParse(t *testing.T) {
	results, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("parsed %d results, want 5: %+v", len(results), results)
	}

	got := results[0]
	if got.Name != "BenchmarkMLPGrad" || got.Procs != 8 {
		t.Fatalf("name/procs = %q/%d, want BenchmarkMLPGrad/8", got.Name, got.Procs)
	}
	if got.Iterations != 100 || got.NsPerOp != 10523456 || got.BytesPerOp != 2661490 || got.AllocsPerOp != 10 {
		t.Fatalf("bad values: %+v", got)
	}

	// Sub-benchmark names keep their path; the -8 suffix is procs.
	if results[2].Name != "BenchmarkMLPGradIntoSharded/par=4" || results[2].Procs != 8 {
		t.Fatalf("sub-benchmark parsed as %+v", results[2])
	}

	// No -P suffix and no -benchmem columns: procs defaults to 1 and the
	// mem fields are the -1 sentinel, not a fake zero.
	dec := results[3]
	if dec.Name != "BenchmarkDecodeCached/n=24" || dec.Procs != 1 {
		t.Fatalf("unsuffixed benchmark parsed as %+v", dec)
	}
	if dec.BytesPerOp != -1 || dec.AllocsPerOp != -1 {
		t.Fatalf("missing -benchmem columns must stay -1, got %+v", dec)
	}

	// Custom units land in Metrics.
	if results[4].Metrics["MB/s"] != 855559 {
		t.Fatalf("custom metric lost: %+v", results[4])
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	noise := "goos: linux\nPASS\nok  \tisgc\t1.2s\n--- BENCH: BenchmarkX\nBenchmarkBroken abc ns/op\n"
	results, err := parse(strings.NewReader(noise))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("noise produced results: %+v", results)
	}
}

func TestSplitProcs(t *testing.T) {
	cases := []struct {
		in    string
		name  string
		procs int
	}{
		{"BenchmarkFoo-8", "BenchmarkFoo", 8},
		{"BenchmarkFoo", "BenchmarkFoo", 1},
		{"BenchmarkFoo/n=24", "BenchmarkFoo/n=24", 1},
		{"BenchmarkFoo/n=24-4", "BenchmarkFoo/n=24", 4},
		{"BenchmarkFoo/sub-case", "BenchmarkFoo/sub-case", 1},
	}
	for _, c := range cases {
		name, procs := splitProcs(c.in)
		if name != c.name || procs != c.procs {
			t.Errorf("splitProcs(%q) = (%q, %d), want (%q, %d)", c.in, name, procs, c.name, c.procs)
		}
	}
}

func TestRunWritesReport(t *testing.T) {
	var buf bytes.Buffer
	if err := run(strings.NewReader(sample), &buf); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if rep.GoVersion == "" || rep.NumCPU <= 0 {
		t.Fatalf("host context missing: %+v", rep)
	}
	if len(rep.Results) != 5 {
		t.Fatalf("report has %d results, want 5", len(rep.Results))
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	var buf bytes.Buffer
	if err := run(strings.NewReader("PASS\n"), &buf); err == nil {
		t.Fatal("expected an error for input without benchmark lines")
	}
}
