package main

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, path string, results []Result) {
	t.Helper()
	b, err := json.Marshal(Report{GoVersion: "go1.24", Results: results})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestDiffTable(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	writeReport(t, oldPath, []Result{
		{Name: "BenchmarkSame", NsPerOp: 100, BytesPerOp: 64, AllocsPerOp: 2},
		{Name: "BenchmarkFaster", NsPerOp: 200, BytesPerOp: 64, AllocsPerOp: 2},
		{Name: "BenchmarkSlower", NsPerOp: 100, BytesPerOp: 64, AllocsPerOp: 2},
		{Name: "BenchmarkGone", NsPerOp: 50, BytesPerOp: -1, AllocsPerOp: -1},
	})
	writeReport(t, newPath, []Result{
		{Name: "BenchmarkSame", NsPerOp: 100, BytesPerOp: 64, AllocsPerOp: 2},
		{Name: "BenchmarkFaster", NsPerOp: 100, BytesPerOp: 32, AllocsPerOp: 1},
		{Name: "BenchmarkSlower", NsPerOp: 150, BytesPerOp: 128, AllocsPerOp: 4},
		{Name: "BenchmarkNew", NsPerOp: 10, BytesPerOp: 0, AllocsPerOp: 0},
	})

	var out strings.Builder
	if err := runDiff(oldPath, newPath, 0, &out); err != nil {
		t.Fatalf("runDiff: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"BenchmarkFaster", "-50.0%", // halved
		"BenchmarkSlower", "+50.0%",
		"BenchmarkSame", "+0.0%",
		"new", "gone",
		"worst ns/op regression: BenchmarkSlower +50.0%",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("diff output missing %q:\n%s", want, got)
		}
	}
}

func TestDiffFailOver(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	writeReport(t, oldPath, []Result{{Name: "BenchmarkX", NsPerOp: 100}})
	writeReport(t, newPath, []Result{{Name: "BenchmarkX", NsPerOp: 125}})

	var out strings.Builder
	// 25% regression passes a 30% gate, fails a 10% gate.
	if err := runDiff(oldPath, newPath, 30, &out); err != nil {
		t.Fatalf("under threshold should pass: %v", err)
	}
	err := runDiff(oldPath, newPath, 10, &out)
	if err == nil || !strings.Contains(err.Error(), "BenchmarkX") {
		t.Fatalf("over threshold should fail naming the benchmark, got %v", err)
	}
}

func TestDiffErrors(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	writeReport(t, good, []Result{{Name: "BenchmarkX", NsPerOp: 1}})

	var out strings.Builder
	if err := runDiff(filepath.Join(dir, "missing.json"), good, 0, &out); err == nil {
		t.Fatal("missing old report should error")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{not json"), 0o644)
	if err := runDiff(good, bad, 0, &out); err == nil {
		t.Fatal("malformed new report should error")
	}
	empty := filepath.Join(dir, "empty.json")
	os.WriteFile(empty, []byte(`{"results":[]}`), 0o644)
	if err := runDiff(good, empty, 0, &out); err == nil {
		t.Fatal("empty report should error")
	}
}

func TestPct(t *testing.T) {
	if got := pct(100, 150); got != 50 {
		t.Errorf("pct(100,150) = %v", got)
	}
	if got := pct(0, 5); !math.IsInf(got, 1) {
		t.Errorf("pct(0,5) = %v, want +Inf", got)
	}
	if got := pct(0, 0); got != 0 {
		t.Errorf("pct(0,0) = %v", got)
	}
}

func TestDiffSharedMetrics(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	writeReport(t, oldPath, []Result{{
		Name: "BenchmarkLoadgen", NsPerOp: 100,
		Metrics: map[string]float64{"p95-ns": 400, "steps/sec": 1000, "old-only": 7},
	}})
	writeReport(t, newPath, []Result{{
		Name: "BenchmarkLoadgen", NsPerOp: 100,
		Metrics: map[string]float64{"p95-ns": 200, "steps/sec": 2000, "new-only": 9},
	}})

	var out strings.Builder
	if err := runDiff(oldPath, newPath, 0, &out); err != nil {
		t.Fatalf("runDiff: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{"p95-ns", "-50.0%", "steps/sec", "+100.0%"} {
		if !strings.Contains(got, want) {
			t.Errorf("diff output missing shared metric %q:\n%s", want, got)
		}
	}
	for _, skip := range []string{"old-only", "new-only"} {
		if strings.Contains(got, skip) {
			t.Errorf("diff output shows unshared metric %q:\n%s", skip, got)
		}
	}
}
