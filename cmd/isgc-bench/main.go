// Command isgc-bench turns `go test -bench -benchmem` text into a
// machine-readable JSON report, so CI can archive performance numbers
// (grad kernels, decode, wire roundtrip) and diffs between runs are a
// `jq` expression instead of eyeballing aligned columns.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchmem ./... | isgc-bench -o BENCH_PR5.json
//	isgc-bench diff [-fail-over 10] BENCH_PR5.json BENCH_PR6.json
//
// diff compares two reports benchmark-by-benchmark and prints a delta
// table; -fail-over N makes it exit non-zero when any ns/op regression
// exceeds N percent, which is the CI perf gate.
//
// The parser understands the standard benchmark line grammar — name,
// iteration count, then (value, unit) pairs — so custom units reported
// via b.ReportMetric (e.g. MB/s from b.SetBytes) land in the "metrics"
// map next to the well-known ns/op, B/op, and allocs/op.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name with the -P GOMAXPROCS suffix stripped
	// (it is recorded separately so renames don't show up as regressions
	// when CI core counts change).
	Name string `json:"name"`
	// Procs is the GOMAXPROCS the benchmark ran with (1 when unsuffixed).
	Procs int `json:"procs"`
	// Iterations is b.N for the reported timing.
	Iterations int64 `json:"iterations"`
	// NsPerOp, BytesPerOp, AllocsPerOp are the well-known units; the
	// latter two are -1 when the benchmark did not run with -benchmem.
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics holds every other (value, unit) pair, e.g. "MB/s".
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the file isgc-bench writes: enough host context to interpret
// the numbers, then the results in input order.
type Report struct {
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	NumCPU    int      `json:"num_cpu"`
	Results   []Result `json:"results"`
}

// parseLine parses one benchmark output line, returning ok=false for
// non-benchmark lines (the "goos:", "pkg:", PASS, and ok trailers).
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Iterations: iters, BytesPerOp: -1, AllocsPerOp: -1}
	r.Name, r.Procs = splitProcs(fields[0])
	// The rest of the line is (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = v
		}
	}
	return r, true
}

// splitProcs splits "BenchmarkFoo/case-8" into ("BenchmarkFoo/case", 8).
// The suffix is only GOMAXPROCS when it follows the last path segment,
// so "Benchmark/n=24" keeps its name intact.
func splitProcs(name string) (string, int) {
	i := strings.LastIndexByte(name, '-')
	if i < 0 || i < strings.LastIndexByte(name, '/') {
		return name, 1
	}
	p, err := strconv.Atoi(name[i+1:])
	if err != nil || p <= 0 {
		return name, 1
	}
	return name[:i], p
}

// parse reads benchmark output and collects every result line.
func parse(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		if res, ok := parseLine(sc.Text()); ok {
			out = append(out, res)
		}
	}
	return out, sc.Err()
}

func run(in io.Reader, out io.Writer) error {
	results, err := parse(in)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark lines found in input (run with `go test -bench`)")
	}
	rep := Report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Results:   results,
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "diff" {
		if err := cmdDiff(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "isgc-bench:", err)
			os.Exit(1)
		}
		return
	}
	outPath := flag.String("o", "", "write the JSON report to this file (default stdout)")
	flag.Parse()
	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "isgc-bench:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	// Tee the input through to stderr so the human-readable table still
	// shows up in CI logs next to the artifact.
	in := io.TeeReader(os.Stdin, os.Stderr)
	if err := run(in, out); err != nil {
		fmt.Fprintln(os.Stderr, "isgc-bench:", err)
		os.Exit(1)
	}
}
