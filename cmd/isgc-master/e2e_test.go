package main

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"isgc/internal/cliconfig"
)

// TestEndToEndBinaries builds the real isgc-master and isgc-worker
// executables and runs a full CR(4,2) training session over TCP with one
// deliberately slow worker — the complete multi-process deployment story.
func TestEndToEndBinaries(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping binary e2e in -short mode")
	}
	dir := t.TempDir()
	masterBin := filepath.Join(dir, "isgc-master")
	workerBin := filepath.Join(dir, "isgc-worker")
	for _, b := range []struct{ out, pkg string }{
		{masterBin, "isgc/cmd/isgc-master"},
		{workerBin, "isgc/cmd/isgc-worker"},
	} {
		cmd := exec.Command("go", "build", "-o", b.out, b.pkg)
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", b.pkg, err, out)
		}
	}

	addr := freeAddr(t)
	master := exec.Command(masterBin,
		"-addr", addr, "-n", "4", "-c", "2", "-scheme", "cr",
		"-w", "2", "-steps", "6", "-threshold", "0", "-seed", "42")
	var masterOut strings.Builder
	master.Stdout = &masterOut
	master.Stderr = &masterOut
	if err := master.Start(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	workerErrs := make(chan string, 4)
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			args := []string{
				"-addr", addr, "-id", fmt.Sprint(i), "-n", "4", "-c", "2",
				"-scheme", "cr", "-seed", "42",
			}
			if i == 0 {
				args = append(args, "-delay", "150ms") // a real straggler process
			}
			w := exec.Command(workerBin, args...)
			if out, err := w.CombinedOutput(); err != nil {
				workerErrs <- fmt.Sprintf("worker %d: %v\n%s", i, err, out)
			}
		}()
	}

	done := make(chan error, 1)
	go func() { done <- master.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("master failed: %v\n%s", err, masterOut.String())
		}
	case <-time.After(90 * time.Second):
		_ = master.Process.Kill()
		t.Fatalf("master timed out\n%s", masterOut.String())
	}
	wg.Wait()
	close(workerErrs)
	for msg := range workerErrs {
		t.Fatal(msg)
	}

	out := masterOut.String()
	if !strings.Contains(out, "done: steps=6") {
		t.Fatalf("master output missing completion line:\n%s", out)
	}
	if !strings.Contains(out, "avail=2") {
		t.Fatalf("master never gathered w=2 workers:\n%s", out)
	}
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func TestRunRejectsBadScheme(t *testing.T) {
	spec := cliconfig.SchemeSpec{Scheme: "bogus", N: 4, C: 2}
	if err := run("127.0.0.1:0", spec, cliconfig.DefaultData(1), 2, 0, 0.1, 1, 0, 0, 0); err == nil {
		t.Fatal("expected error for unknown scheme")
	}
}

func TestRunRejectsBadDataset(t *testing.T) {
	spec := cliconfig.SchemeSpec{Scheme: "cr", N: 4, C: 2}
	d := cliconfig.DefaultData(1)
	d.Samples = 0
	if err := run("127.0.0.1:0", spec, d, 2, 0, 0.1, 1, 0, 0, 0); err == nil {
		t.Fatal("expected error for empty dataset")
	}
}
