package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"isgc/internal/cliconfig"
	"isgc/internal/cluster"
)

// syncBuffer lets the test poll a subprocess's combined output while the
// process is still writing it.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestEndToEndBinaries builds the real isgc-master and isgc-worker
// executables and runs a full CR(4,2) training session over TCP with one
// deliberately slow worker and one that crashes mid-run, while this test
// scrapes the master's live metrics endpoint — the complete multi-process
// deployment story including observability.
func TestEndToEndBinaries(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping binary e2e in -short mode")
	}
	dir := t.TempDir()
	masterBin := filepath.Join(dir, "isgc-master")
	workerBin := filepath.Join(dir, "isgc-worker")
	for _, b := range []struct{ out, pkg string }{
		{masterBin, "isgc/cmd/isgc-master"},
		{workerBin, "isgc/cmd/isgc-worker"},
	} {
		cmd := exec.Command("go", "build", "-o", b.out, b.pkg)
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", b.pkg, err, out)
		}
	}

	// -version must identify the binary without starting a run.
	if out, err := exec.Command(masterBin, "-version").CombinedOutput(); err != nil {
		t.Fatalf("isgc-master -version: %v\n%s", err, out)
	} else if !strings.Contains(string(out), "isgc") {
		t.Fatalf("-version output does not identify the module: %q", out)
	}

	addr := freeAddr(t)
	metricsAddr := freeAddr(t)
	timelinePath := filepath.Join(dir, "timeline.json")
	eventsPath := filepath.Join(dir, "events.jsonl")
	master := exec.Command(masterBin,
		"-addr", addr, "-n", "4", "-c", "2", "-scheme", "cr",
		"-w", "2", "-steps", "8", "-threshold", "0", "-seed", "42",
		"-liveness", "2s",
		"-timeline", timelinePath, "-events", eventsPath,
		"-metrics-addr", metricsAddr, "-metrics-linger", "10s")
	masterOut := &syncBuffer{}
	master.Stdout = masterOut
	master.Stderr = masterOut
	if err := master.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = master.Process.Kill() }()

	var wg sync.WaitGroup
	workerErrs := make(chan string, 4)
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			args := []string{
				"-addr", addr, "-id", fmt.Sprint(i), "-n", "4", "-c", "2",
				"-scheme", "cr", "-seed", "42",
			}
			switch i {
			case 0:
				args = append(args, "-delay", "150ms") // a real straggler process
			case 3:
				args = append(args, "-crash-at", "3") // dies mid-run
			}
			w := exec.Command(workerBin, args...)
			if out, err := w.CombinedOutput(); err != nil {
				workerErrs <- fmt.Sprintf("worker %d: %v\n%s", i, err, out)
			}
		}()
	}

	// Wait until the run has completed (the "done:" line) but the metrics
	// endpoint still lingers, then scrape the final state.
	deadline := time.Now().Add(90 * time.Second)
	for !strings.Contains(masterOut.String(), "done: steps=") {
		if time.Now().After(deadline) {
			_ = master.Process.Kill()
			t.Fatalf("master never finished\n%s", masterOut.String())
		}
		time.Sleep(100 * time.Millisecond)
	}

	base := "http://" + metricsAddr
	body := httpGet(t, base+"/metrics")
	if !promTextValid(body) {
		t.Errorf("metrics output is not valid Prometheus text:\n%s", clip(body))
	}
	doneLine := regexp.MustCompile(`done: steps=(\d+) .*degraded_steps=(\d+)`).
		FindStringSubmatch(masterOut.String())
	if doneLine == nil {
		t.Fatalf("no parseable done line in:\n%s", masterOut.String())
	}
	for _, want := range []string{
		"isgc_master_gather_latency_seconds_bucket",
		fmt.Sprintf("isgc_master_gather_latency_seconds_count %s", doneLine[1]),
		fmt.Sprintf("isgc_master_steps_total %s", doneLine[1]),
		fmt.Sprintf("isgc_master_degraded_steps_total %s", doneLine[2]),
		"isgc_master_recovered_fraction",
		`isgc_master_worker_alive{worker="3"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("final /metrics missing %q", want)
		}
	}

	healthBody := httpGet(t, base+"/healthz")
	if !strings.Contains(healthBody, "go_version") {
		t.Errorf("healthz missing build info (no go_version key):\n%s", clip(healthBody))
	}
	var health cluster.MasterHealth
	if err := json.Unmarshal([]byte(healthBody), &health); err != nil {
		t.Fatalf("healthz decode: %v", err)
	}
	if len(health.Workers) != 4 {
		t.Fatalf("healthz has %d workers, want 4", len(health.Workers))
	}
	if health.Workers[3].Alive {
		t.Error("healthz reports crashed worker 3 alive after the run")
	}
	// The run is over and all connections are closed, but the per-worker
	// history must survive: every worker registered and the survivors
	// contributed gradients.
	for i, wv := range health.Workers {
		if wv.Generation < 0 {
			t.Errorf("healthz says worker %d never connected", i)
		}
		// Workers 1 and 2 are fast and healthy, so the fastest-2 gather
		// must have accepted them; 0 (straggler) and 3 (crashed) may
		// legitimately never win a step.
		if (i == 1 || i == 2) && wv.AcceptedSteps == 0 {
			t.Errorf("healthz says fast worker %d contributed no gradients", i)
		}
	}

	// The run is over; the master only lingers for metrics now.
	_ = master.Process.Kill()
	done := make(chan error, 1)
	go func() { done <- master.Wait() }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("master did not exit after kill")
	}
	wg.Wait()
	close(workerErrs)
	for msg := range workerErrs {
		t.Fatal(msg)
	}

	out := masterOut.String()
	if !strings.Contains(out, "done: steps=8") {
		t.Fatalf("master output missing completion line:\n%s", out)
	}
	if !strings.Contains(out, "avail=2") {
		t.Fatalf("master never gathered w=2 workers:\n%s", out)
	}
	if !strings.Contains(out, "latency: p50=") {
		t.Fatalf("master output missing latency summary:\n%s", out)
	}
	if !strings.Contains(out, "metrics: http://") {
		t.Fatalf("master output missing metrics URL:\n%s", out)
	}
	if !strings.Contains(out, "straggler attribution (per worker)") {
		t.Fatalf("master output missing attribution table:\n%s", out)
	}

	checkTimelineFile(t, timelinePath)
	checkEventLogFile(t, eventsPath)
}

// checkTimelineFile asserts the -timeline output is a loadable Chrome
// trace: a JSON object with a traceEvents array holding at least one master
// step span and at least one per-worker compute span whose duration came
// from the worker's own clock.
func checkTimelineFile(t *testing.T, path string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("timeline file: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TID  int     `json:"tid"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("timeline is not valid Chrome trace JSON: %v\n%s", err, clip(string(raw)))
	}
	steps, computes := 0, 0
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		if strings.HasPrefix(e.Name, "step ") && e.TID == 0 {
			steps++
		}
		// Worker compute spans live on tid = worker id + 1 and carry the
		// worker-reported duration, which a real compute pass makes nonzero.
		if e.Name == "compute" && e.TID > 0 && e.Dur > 0 {
			computes++
		}
	}
	if steps == 0 {
		t.Errorf("timeline has no master step spans (%d events)", len(doc.TraceEvents))
	}
	if computes == 0 {
		t.Errorf("timeline has no per-worker compute spans with duration (%d events)", len(doc.TraceEvents))
	}
}

// checkEventLogFile asserts the -events output is valid JSONL covering the
// run's lifecycle.
func checkEventLogFile(t *testing.T, path string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("event log: %v", err)
	}
	types := map[string]bool{}
	for i, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var e struct {
			Level string `json:"level"`
			Type  string `json:"type"`
		}
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("event log line %d is not JSON: %v\n%s", i+1, err, line)
		}
		types[e.Type] = true
	}
	for _, want := range []string{"master.run_started", "master.worker_registered", "master.run_finished"} {
		if !types[want] {
			t.Errorf("event log missing %q events (saw %v)", want, types)
		}
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d\n%s", url, resp.StatusCode, body)
	}
	return string(body)
}

// promTextValid checks every non-empty line is a comment or a sample of
// the form `name{labels} value` — the 0.0.4 exposition grammar this repo
// emits.
func promTextValid(body string) bool {
	sample := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (NaN|[+-]?(Inf|[0-9].*))$`)
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "# ") {
			continue
		}
		if !sample.MatchString(line) {
			return false
		}
	}
	return strings.Contains(body, "# TYPE")
}

func clip(s string) string {
	if len(s) > 2000 {
		return s[:2000] + "..."
	}
	return s
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func TestRunRejectsBadScheme(t *testing.T) {
	spec := cliconfig.SchemeSpec{Scheme: "bogus", N: 4, C: 2}
	err := run(options{addr: "127.0.0.1:0", spec: spec, data: cliconfig.DefaultData(1), w: 2, lr: 0.1, maxSteps: 1})
	if err == nil {
		t.Fatal("expected error for unknown scheme")
	}
}

func TestRunRejectsBadDataset(t *testing.T) {
	spec := cliconfig.SchemeSpec{Scheme: "cr", N: 4, C: 2}
	d := cliconfig.DefaultData(1)
	d.Samples = 0
	err := run(options{addr: "127.0.0.1:0", spec: spec, data: d, w: 2, lr: 0.1, maxSteps: 1})
	if err == nil {
		t.Fatal("expected error for empty dataset")
	}
}

func TestRunRejectsBadMetricsAddr(t *testing.T) {
	spec := cliconfig.SchemeSpec{Scheme: "cr", N: 4, C: 2}
	err := run(options{
		addr: "127.0.0.1:0", spec: spec, data: cliconfig.DefaultData(1),
		w: 2, lr: 0.1, maxSteps: 1, metricsAddr: "256.256.256.256:0", out: io.Discard,
	})
	if err == nil || !strings.Contains(err.Error(), "metrics endpoint") {
		t.Fatalf("expected metrics endpoint error, got %v", err)
	}
}
