// Control-plane mode: instead of running one training job to completion,
// the process hosts the multi-job scheduler and fleet manager. Workers
// join the fleet with `isgc-worker -fleet <addr>`, jobs are submitted over
// the admin /jobs API (or `isgc-ctl submit`), and the plane handles
// admission, live re-placement after permanent worker loss, and durable
// checkpoint/restore of both the jobs and its own job table.
package main

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"isgc/internal/admin"
	"isgc/internal/cliconfig"
	"isgc/internal/controlplane"
	"isgc/internal/events"
	"isgc/internal/metrics"
)

// cpOptions collects the control-plane flags.
type cpOptions struct {
	fleetAddr    string
	stateDir     string
	restore      bool
	agentTimeout time.Duration
	metricsAddr  string
	eventsPath   string
	logLevel     string
	obs          obsOptions
}

func runControlPlane(opts cpOptions) error {
	var reg *metrics.Registry
	if opts.metricsAddr != "" {
		reg = metrics.NewRegistry()
	}
	var ev *events.Log
	if opts.eventsPath != "" || opts.metricsAddr != "" {
		log, closer, err := cliconfig.OpenEventLog(opts.eventsPath, opts.logLevel)
		if err != nil {
			return err
		}
		if closer != nil {
			defer closer.Close()
		}
		ev = log
	}

	// The federated store samples the plane registry plus every per-job
	// master registry the scheduler registers (labeled job=<id>), so one
	// dashboard covers the whole fleet.
	tsStore, sloRules, profiler, stopObs, err := buildObs(opts.obs, ev, opts.metricsAddr != "")
	if err != nil {
		return err
	}
	defer stopObs()
	tsStore.AddSource("plane", reg, nil)

	plane, err := controlplane.New(controlplane.Config{
		FleetAddr:    opts.fleetAddr,
		StateDir:     opts.stateDir,
		Restore:      opts.restore,
		AgentTimeout: opts.agentTimeout,
		Registry:     reg,
		Events:       ev,
		Obs:          tsStore,
	})
	if err != nil {
		return err
	}
	if err := plane.Start(); err != nil {
		return err
	}

	if opts.metricsAddr != "" {
		h := plane.Handler()
		adm := admin.New(admin.Config{
			Addr:     opts.metricsAddr,
			Registry: reg,
			Health: func() any {
				return map[string]any{"jobs": plane.Jobs(), "fleet": plane.FleetSnapshot()}
			},
			Events:     ev,
			TimeSeries: tsStore,
			Alerts:     sloRules,
			Profiles:   profiler,
			Extra: map[string]http.Handler{
				"/jobs":  h,
				"/jobs/": h,
				"/fleet": h,
			},
		})
		if err := adm.Start(); err != nil {
			plane.Stop()
			return fmt.Errorf("admin endpoint: %w", err)
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = adm.Shutdown(ctx)
		}()
		fmt.Printf("controlplane: admin on %s (/jobs, /fleet, /metrics)\n", adm.URL())
		fmt.Printf("controlplane: dashboard on %s/debug/dash (timeseries: /api/timeseries, alerts: /api/alerts)\n", adm.URL())
	}
	fmt.Printf("controlplane: fleet on %s, state-dir=%q restore=%v\n",
		plane.FleetAddr(), opts.stateDir, opts.restore)

	// SIGINT/SIGTERM → quiesce every job at a step boundary, checkpoint the
	// scheduler state, exit 0. A later -restore resumes the jobs.
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	<-sigCh
	fmt.Println("controlplane: shutting down (jobs quiesce at their next step boundary)")
	plane.Stop()
	return nil
}
