// Observability wiring shared by the single-run master and the control
// plane: the in-process time-series store behind /api/timeseries and
// /debug/dash, the SLO rule engine behind /api/alerts, and the continuous
// profiler behind /debug/profiles. All three are assembled from the same
// flag set so a single-run master and a control plane read identically to
// an operator.
package main

import (
	"fmt"
	"time"

	"isgc/internal/events"
	"isgc/internal/obs"
)

// obsOptions collects the observability flags.
type obsOptions struct {
	sampleInterval time.Duration // time-series sampling period (0 = 1s)
	retention      int           // samples retained per series (0 = default)

	profileDir      string        // continuous-profiling directory (empty disables)
	profileInterval time.Duration // capture period (0 = 60s)
	profileKeep     int           // retained captures per kind (0 = default)

	sloRecoveredFloor float64       // fire when recovered fraction < floor (0 disables)
	sloGatherP95      time.Duration // fire when gather p95 > bound (0 disables)
	sloWindow         time.Duration // evaluation window for both rules (0 = 30s)
}

// sloRules translates the flag set into rule definitions. An empty slice
// means no engine is built at all.
func (o obsOptions) sloRules() []obs.Rule {
	var rules []obs.Rule
	if o.sloRecoveredFloor > 0 {
		rules = append(rules, obs.Rule{
			Name:     "recovered-fraction-floor",
			Series:   "isgc_master_recovered_fraction",
			Agg:      obs.AggLast,
			Window:   o.sloWindow,
			Op:       obs.OpBelow,
			Bound:    o.sloRecoveredFloor,
			Severity: "error",
		})
	}
	if o.sloGatherP95 > 0 {
		rules = append(rules, obs.Rule{
			Name:   "gather-p95-ceiling",
			Series: "isgc_master_gather_latency_seconds_p95",
			Agg:    obs.AggLast,
			Window: o.sloWindow,
			Op:     obs.OpAbove,
			Bound:  o.sloGatherP95.Seconds(),
		})
	}
	return rules
}

// buildObs assembles and starts the store, rule engine, and profiler per
// the flag set. Any component can come back nil (disabled); the returned
// stop function is always safe to call. The store is returned un-sourced —
// the caller decides what registries feed it (the single-run master adds
// its own registry, the control plane adds the plane registry and lets the
// scheduler federate per-job ones).
func buildObs(o obsOptions, ev *events.Log, withStore bool) (*obs.Store, *obs.Rules, *obs.Profiler, func(), error) {
	var (
		store *obs.Store
		rules *obs.Rules
		prof  *obs.Profiler
	)
	if withStore {
		store = obs.NewStore(obs.StoreConfig{
			Interval:  o.sampleInterval,
			Retention: o.retention,
		})
		store.Start()
		rules = obs.NewRules(obs.RulesConfig{
			Store:  store,
			Rules:  o.sloRules(),
			Events: ev,
		})
		rules.Start()
	}
	if o.profileDir != "" {
		p, err := obs.NewProfiler(obs.ProfilerConfig{
			Dir:      o.profileDir,
			Interval: o.profileInterval,
			Keep:     o.profileKeep,
		})
		if err != nil {
			store.Stop()
			rules.Stop()
			return nil, nil, nil, nil, fmt.Errorf("profiling: %w", err)
		}
		p.Start()
		prof = p
	}
	stop := func() {
		rules.Stop()
		store.Stop()
		prof.Stop()
	}
	return store, rules, prof, stop, nil
}
