package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"

	"isgc/internal/checkpoint"
)

// buildClusterBinaries compiles the real master and worker executables into
// a fresh temp directory (the go build cache makes repeat builds cheap).
func buildClusterBinaries(t *testing.T) (masterBin, workerBin string) {
	t.Helper()
	dir := t.TempDir()
	masterBin = filepath.Join(dir, "isgc-master")
	workerBin = filepath.Join(dir, "isgc-worker")
	for _, b := range []struct{ out, pkg string }{
		{masterBin, "isgc/cmd/isgc-master"},
		{workerBin, "isgc/cmd/isgc-worker"},
	} {
		cmd := exec.Command("go", "build", "-o", b.out, b.pkg)
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", b.pkg, err, out)
		}
	}
	return masterBin, workerBin
}

// startWorkerProcs launches n worker processes and returns the Cmds plus a
// channel that receives each worker's exit error (nil = clean exit 0) as it
// terminates.
func startWorkerProcs(t *testing.T, workerBin string, n int, outs []*syncBuffer, extra func(i int) []string) ([]*exec.Cmd, chan error) {
	t.Helper()
	cmds := make([]*exec.Cmd, n)
	exits := make(chan error, n)
	for i := 0; i < n; i++ {
		args := []string{
			"-id", fmt.Sprint(i), "-n", "4", "-c", "2", "-scheme", "cr", "-seed", "42",
		}
		args = append(args, extra(i)...)
		w := exec.Command(workerBin, args...)
		w.Stdout = outs[i]
		w.Stderr = outs[i]
		if err := w.Start(); err != nil {
			t.Fatal(err)
		}
		cmds[i] = w
		go func(w *exec.Cmd) { exits <- w.Wait() }(w)
	}
	return cmds, exits
}

// readRunDump parses a -records-out file.
func readRunDump(t *testing.T, path string) runDump {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("records file: %v", err)
	}
	var d runDump
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatalf("records file %s is not valid JSON: %v", path, err)
	}
	return d
}

// waitProc waits for a process with a deadline.
func waitProc(t *testing.T, what string, cmd *exec.Cmd, timeout time.Duration) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(timeout):
		_ = cmd.Process.Kill()
		t.Fatalf("%s did not exit within %v", what, timeout)
		return nil
	}
}

// TestE2EKillAndRestore is the headline durability acceptance check at the
// process level: a master is killed with SIGKILL mid-run — no goodbye, no
// final checkpoint — and a new master process restarted with -restore on the
// same address finishes the run against the surviving worker fleet. The
// completed run's step records and final params must be bit-identical to an
// uninterrupted reference run from the checkpoint boundary on.
func TestE2EKillAndRestore(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping binary e2e in -short mode")
	}
	masterBin, workerBin := buildClusterBinaries(t)
	dir := t.TempDir()
	ckptDir := filepath.Join(dir, "ckpt")
	refPath := filepath.Join(dir, "ref.json")
	outPath := filepath.Join(dir, "restored.json")

	// Shared run shape: CR(4,2), wait for all 4 (bit-deterministic gather
	// set), fixed step count, sequential loss eval (the sharded sum's float
	// bits depend on the pool size, and this test compares bits).
	common := []string{
		"-n", "4", "-c", "2", "-scheme", "cr", "-w", "0",
		"-steps", "12", "-threshold", "0", "-seed", "42", "-compute-par", "1",
	}

	// Uninterrupted reference run (fast workers, no checkpoints).
	refAddr := freeAddr(t)
	refMaster := exec.Command(masterBin, append([]string{"-addr", refAddr, "-records-out", refPath}, common...)...)
	refOut := &syncBuffer{}
	refMaster.Stdout = refOut
	refMaster.Stderr = refOut
	if err := refMaster.Start(); err != nil {
		t.Fatal(err)
	}
	refWorkerOuts := make([]*syncBuffer, 4)
	for i := range refWorkerOuts {
		refWorkerOuts[i] = &syncBuffer{}
	}
	_, refExits := startWorkerProcs(t, workerBin, 4, refWorkerOuts, func(i int) []string {
		return []string{"-addr", refAddr}
	})
	if err := waitProc(t, "reference master", refMaster, 90*time.Second); err != nil {
		t.Fatalf("reference master: %v\n%s", err, refOut.String())
	}
	for i := 0; i < 4; i++ {
		if err := <-refExits; err != nil {
			t.Fatalf("reference worker: %v", err)
		}
	}
	ref := readRunDump(t, refPath)
	if ref.Steps != 12 || ref.Interrupted {
		t.Fatalf("reference run: steps=%d interrupted=%v, want a full 12-step run", ref.Steps, ref.Interrupted)
	}

	// First life: same run with checkpoints every 3 steps and deliberately
	// slow workers, so the SIGKILL below provably lands mid-run.
	addr := freeAddr(t)
	m1 := exec.Command(masterBin, append([]string{
		"-addr", addr, "-checkpoint-dir", ckptDir, "-checkpoint-every", "3", "-lease-ttl", "1s",
	}, common...)...)
	m1Out := &syncBuffer{}
	m1.Stdout = m1Out
	m1.Stderr = m1Out
	if err := m1.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m1.Process.Kill() }()
	workerOuts := make([]*syncBuffer, 4)
	for i := range workerOuts {
		workerOuts[i] = &syncBuffer{}
	}
	workers, exits := startWorkerProcs(t, workerBin, 4, workerOuts, func(i int) []string {
		// The reconnect budget is what lets the fleet survive the master's
		// death and rejoin its successor on the same address.
		return []string{"-addr", addr, "-delay", "40ms", "-reconnect", "60s"}
	})
	defer func() {
		for _, w := range workers {
			_ = w.Process.Kill()
		}
	}()

	// Wait for the first durable checkpoint file, then SIGKILL the master:
	// the hard-crash case — no signal handler, no final checkpoint, the
	// lease left in place.
	deadline := time.Now().Add(60 * time.Second)
	for {
		entries, _ := os.ReadDir(ckptDir)
		found := false
		for _, e := range entries {
			// Only a fully renamed checkpoint counts: Save writes through a
			// "ckpt-*.json.tmp-*" temp file in the same dir, and killing the
			// master while that is still mid-write leaves nothing to restore.
			if strings.HasPrefix(e.Name(), "ckpt-") && !strings.Contains(e.Name(), ".tmp") {
				found = true
			}
		}
		if found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no checkpoint ever appeared in %s\n%s", ckptDir, m1Out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := m1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = m1.Wait() // reap; a killed process reports an error by design

	// Second life: restore on the same address. The workers' reconnect
	// loops find it, re-register with their completed step counts, and the
	// run finishes.
	m2 := exec.Command(masterBin, append([]string{
		"-addr", addr, "-checkpoint-dir", ckptDir, "-checkpoint-every", "3", "-restore",
		"-records-out", outPath,
	}, common...)...)
	m2Out := &syncBuffer{}
	m2.Stdout = m2Out
	m2.Stderr = m2Out
	if err := m2.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m2.Process.Kill() }()
	if err := waitProc(t, "restored master", m2, 90*time.Second); err != nil {
		t.Fatalf("restored master: %v\n%s", err, m2Out.String())
	}
	if !strings.Contains(m2Out.String(), "done: steps=") {
		t.Fatalf("restored master never finished the run:\n%s", m2Out.String())
	}
	for i := 0; i < 4; i++ {
		if err := <-exits; err != nil {
			t.Fatalf("worker did not exit cleanly after the restored run: %v", err)
		}
	}

	// Crash equivalence: the restored life's records must match the
	// reference bit for bit from the checkpoint boundary on (Elapsed is
	// wall clock and legitimately differs), and the final params exactly.
	out2 := readRunDump(t, outPath)
	if out2.Interrupted || len(out2.Records) == 0 {
		t.Fatalf("restored run: interrupted=%v records=%d", out2.Interrupted, len(out2.Records))
	}
	if len(out2.Records) >= len(ref.Records) {
		t.Fatalf("restored life replayed the whole run (%d records); the kill did not land mid-run", len(out2.Records))
	}
	offset := -1
	for i, r := range ref.Records {
		if r.Step == out2.Records[0].Step {
			offset = i
			break
		}
	}
	if offset < 0 {
		t.Fatalf("restored life starts at step %d, absent from the reference", out2.Records[0].Step)
	}
	if want := len(ref.Records) - offset; len(out2.Records) != want {
		t.Fatalf("restored life recorded %d steps, reference has %d from the boundary on", len(out2.Records), want)
	}
	for i := range out2.Records {
		got, want := out2.Records[i], ref.Records[offset+i]
		got.Elapsed, want.Elapsed = 0, 0
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("record %d diverged across the kill/restore:\n restored %+v\n      ref %+v", i, got, want)
		}
	}
	if !reflect.DeepEqual(out2.Params, ref.Params) {
		t.Fatal("final params are not bit-identical after kill/restore")
	}
}

// TestE2EGracefulSignals covers the clean-shutdown half of durability: a
// SIGTERM'd worker persists its resumable state and exits 0; a SIGTERM'd
// master writes a final non-Completed checkpoint, reports the run as
// resumable, and exits 0; the orphaned workers drain their reconnect budget
// and also exit 0.
func TestE2EGracefulSignals(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping binary e2e in -short mode")
	}
	masterBin, workerBin := buildClusterBinaries(t)
	ckptDir := filepath.Join(t.TempDir(), "ckpt")

	addr := freeAddr(t)
	master := exec.Command(masterBin,
		"-addr", addr, "-n", "4", "-c", "2", "-scheme", "cr", "-w", "0",
		"-steps", "500", "-threshold", "0", "-seed", "42",
		"-checkpoint-dir", ckptDir, "-checkpoint-every", "2", "-lease-ttl", "1s")
	masterOut := &syncBuffer{}
	master.Stdout = masterOut
	master.Stderr = masterOut
	if err := master.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = master.Process.Kill() }()

	workerOuts := make([]*syncBuffer, 4)
	for i := range workerOuts {
		workerOuts[i] = &syncBuffer{}
	}
	workers, exits := startWorkerProcs(t, workerBin, 4, workerOuts, func(i int) []string {
		// A short reconnect budget: once the master goes away for good the
		// orphans must give up and exit cleanly, not hang the test.
		return []string{"-addr", addr, "-delay", "30ms", "-reconnect", "2s", "-checkpoint-dir", ckptDir}
	})
	defer func() {
		for _, w := range workers {
			_ = w.Process.Kill()
		}
	}()

	// Let the run make real progress: wait for a master checkpoint at
	// step >= 4 (checkpoint file names embed the step).
	deadline := time.Now().Add(60 * time.Second)
	for {
		entries, _ := os.ReadDir(ckptDir)
		reached := 0
		for _, e := range entries {
			var step int
			if n, _ := fmt.Sscanf(e.Name(), "ckpt-%d.json", &step); n == 1 && step > reached {
				reached = step
			}
		}
		if reached >= 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("master never checkpointed step 4\n%s", masterOut.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// SIGTERM worker 2 mid-run: exit 0 and a persisted WorkerState under
	// the shared checkpoint directory.
	if err := workers[2].Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	var exitErrs []error
	select {
	case err := <-exits:
		exitErrs = append(exitErrs, err)
	case <-time.After(30 * time.Second):
		t.Fatalf("worker 2 did not exit after SIGTERM\n%s", workerOuts[2].String())
	}
	if exitErrs[0] != nil {
		t.Fatalf("SIGTERM'd worker exited non-zero: %v\n%s", exitErrs[0], workerOuts[2].String())
	}
	wstore, err := checkpoint.NewStore(filepath.Join(ckptDir, "worker-2"), checkpoint.DefaultRetain)
	if err != nil {
		t.Fatal(err)
	}
	var ws checkpoint.WorkerState
	if _, err := wstore.Latest(&ws); err != nil {
		t.Fatalf("SIGTERM'd worker left no checkpoint: %v", err)
	}
	if ws.ID != 2 || ws.Steps < 1 || ws.DelayDraws == 0 {
		t.Fatalf("worker state = %+v, want ID 2 with progress and RNG position", ws)
	}

	// SIGTERM the master mid-run: exit 0, an "interrupted" report, and a
	// loadable final checkpoint that is not marked Completed. CR(4,2)
	// tolerates the missing worker, so the run is still going.
	if err := master.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := waitProc(t, "master", master, 30*time.Second); err != nil {
		t.Fatalf("SIGTERM'd master exited non-zero: %v\n%s", err, masterOut.String())
	}
	if !strings.Contains(masterOut.String(), "interrupted:") {
		t.Fatalf("master output missing the interrupted/resumable report:\n%s", masterOut.String())
	}
	store, err := checkpoint.NewStore(ckptDir, checkpoint.DefaultRetain)
	if err != nil {
		t.Fatal(err)
	}
	var cst checkpoint.State
	if _, err := store.Latest(&cst); err != nil {
		t.Fatalf("SIGTERM'd master left no loadable checkpoint: %v", err)
	}
	if cst.Completed || cst.Step < 1 {
		t.Fatalf("final checkpoint = step %d completed=%v, want an in-progress snapshot", cst.Step, cst.Completed)
	}

	// The three orphans drain their 2s reconnect budget and exit 0.
	for i := 0; i < 3; i++ {
		select {
		case err := <-exits:
			if err != nil {
				t.Fatalf("orphaned worker exited non-zero: %v", err)
			}
		case <-time.After(60 * time.Second):
			t.Fatal("orphaned workers did not exit after the reconnect budget")
		}
	}
}
