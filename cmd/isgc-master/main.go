// Command isgc-master runs the training master of the TCP cluster runtime.
// Start it first, then launch n isgc-worker processes pointing at its
// address; the master trains until the loss threshold or the step cap and
// prints the per-step trace.
//
// Master and workers must agree on -n, -c, -scheme, -batch, and -seed so
// the deterministic loaders produce identical batches on partition
// replicas.
//
// Example (CR(4,2), wait for the 2 fastest workers):
//
//	isgc-master -addr 127.0.0.1:7000 -n 4 -c 2 -scheme cr -w 2 &
//	for i in 0 1 2 3; do isgc-worker -addr 127.0.0.1:7000 -id $i -n 4 -c 2 -scheme cr & done
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"isgc/internal/cliconfig"
	"isgc/internal/cluster"
	"isgc/internal/engine"
	"isgc/internal/isgc"
	"isgc/internal/model"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7000", "listen address")
		n         = flag.Int("n", 4, "number of workers / partitions")
		c         = flag.Int("c", 2, "partitions per worker")
		scheme    = flag.String("scheme", "cr", "placement scheme: fr, cr, or hr")
		c1        = flag.Int("c1", 1, "HR upper rows (scheme=hr)")
		g         = flag.Int("g", 2, "HR group count (scheme=hr)")
		w         = flag.Int("w", 0, "workers to wait for per step (0 = all)")
		deadline  = flag.Duration("deadline", 0, "per-step gather deadline (overrides -w when > 0)")
		lr        = flag.Float64("lr", 0.2, "learning rate")
		batch     = flag.Int("batch", 8, "per-partition batch size (must match workers)")
		maxSteps  = flag.Int("steps", 200, "maximum steps")
		threshold = flag.Float64("threshold", 0.3, "loss threshold (0 disables)")
		seed      = flag.Int64("seed", 42, "shared seed (must match workers)")
		samples   = flag.Int("samples", 240, "synthetic dataset size (must match workers)")

		liveness    = flag.Duration("liveness", 15*time.Second, "declare a worker dead after this much silence (negative disables)")
		stepTimeout = flag.Duration("step-timeout", 0, "bound one step's gather even with live workers (0 disables)")
	)
	flag.Parse()
	spec := cliconfig.SchemeSpec{Scheme: *scheme, N: *n, C: *c, C1: *c1, G: *g}
	data := cliconfig.DefaultData(*seed)
	data.Samples = *samples
	data.Batch = *batch
	if err := run(*addr, spec, data, *w, *deadline, *lr, *maxSteps, *threshold, *liveness, *stepTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "isgc-master:", err)
		os.Exit(1)
	}
}

func run(addr string, spec cliconfig.SchemeSpec, dspec cliconfig.DataSpec, w int, deadline time.Duration, lr float64, maxSteps int, threshold float64, liveness, stepTimeout time.Duration) error {
	p, err := spec.Build()
	if err != nil {
		return err
	}
	st, err := engine.NewISGC(isgc.New(p, dspec.Seed))
	if err != nil {
		return err
	}
	data, err := dspec.BuildDataset()
	if err != nil {
		return err
	}
	if w <= 0 {
		w = spec.N
	}
	master, err := cluster.NewMaster(cluster.MasterConfig{
		Addr:            addr,
		Strategy:        st,
		Model:           model.SoftmaxRegression{Features: dspec.Features, Classes: dspec.Classes},
		Data:            data,
		LearningRate:    lr,
		W:               w,
		Deadline:        deadline,
		MaxSteps:        maxSteps,
		LossThreshold:   threshold,
		Seed:            dspec.Seed,
		LivenessTimeout: liveness,
		StepTimeout:     stepTimeout,
	})
	if err != nil {
		return err
	}
	fmt.Printf("master: %s on %s, waiting for %d workers (w=%d per step, deadline=%v, liveness=%v)\n",
		p, master.Addr(), spec.N, w, deadline, liveness)
	res, err := master.Run()
	if err != nil {
		return err
	}
	for _, rec := range res.Run.Records {
		mark := ""
		if rec.Degraded {
			mark = " DEGRADED"
		}
		fmt.Printf("step %3d: avail=%d alive=%d recovered=%.2f loss=%.4f elapsed=%v%s\n",
			rec.Step, rec.Available, rec.Alive, rec.RecoveredFraction, rec.Loss, rec.Elapsed, mark)
	}
	fmt.Printf("done: steps=%d converged=%v final_loss=%.4f total=%v degraded_steps=%d rejoins=%d malformed=%d\n",
		res.Run.Steps(), res.Converged, res.Run.FinalLoss(), res.Run.TotalTime(),
		res.Run.DegradedSteps(), master.Rejoins(), master.MalformedGradients())
	return nil
}
