// Command isgc-master runs the training master of the TCP cluster runtime.
// Start it first, then launch n isgc-worker processes pointing at its
// address; the master trains until the loss threshold or the step cap and
// prints the per-step trace.
//
// Master and workers must agree on -n, -c, -scheme, -batch, and -seed so
// the deterministic loaders produce identical batches on partition
// replicas.
//
// With -metrics-addr the master also serves an admin endpoint: Prometheus
// metrics on /metrics, a liveness snapshot on /healthz, recent structured
// events on /debug/events, a Chrome trace on /debug/timeline, and
// profiling on /debug/pprof/. -metrics-linger keeps it up after training
// ends so the final counters can still be scraped.
//
// Observability: -events writes a JSONL event log ("-" for stderr) with
// -log-level filtering, and -timeline writes a Chrome trace-event file of
// the run (load it in ui.perfetto.dev) with per-step master spans and
// per-worker compute spans. After the run the master prints the
// straggler-attribution table: per-worker chosen/ignored deliveries and
// compute-vs-arrival latency percentiles.
//
// Example (CR(4,2), wait for the 2 fastest workers):
//
//	isgc-master -addr 127.0.0.1:7000 -n 4 -c 2 -scheme cr -w 2 -metrics-addr 127.0.0.1:9100 &
//	for i in 0 1 2 3; do isgc-worker -addr 127.0.0.1:7000 -id $i -n 4 -c 2 -scheme cr & done
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"isgc/internal/admin"
	"isgc/internal/buildinfo"
	"isgc/internal/checkpoint"
	"isgc/internal/cliconfig"
	"isgc/internal/cluster"
	"isgc/internal/engine"
	"isgc/internal/events"
	"isgc/internal/isgc"
	"isgc/internal/metrics"
	"isgc/internal/model"
	"isgc/internal/trace"
)

// options collects everything run needs; flags fill one in main.
type options struct {
	addr          string
	spec          cliconfig.SchemeSpec
	data          cliconfig.DataSpec
	w             int
	deadline      time.Duration
	pipeline      bool // overlap broadcast(t+1) with gather(t)'s tail
	staleness     int  // bounded staleness k (implies pipeline)
	gatherShards  int  // cap on per-worker gather lanes (0 = protocol max)
	lr            float64
	maxSteps      int
	threshold     float64
	liveness      time.Duration
	stepTimeout   time.Duration
	computePar    int           // loss-evaluation pool size (0 = GOMAXPROCS)
	decodeCache   int           // decode LRU capacity (0 disables memoization)
	decodeIncr    bool          // repair chosen sets across steps instead of re-solving
	wire          string        // wire codec: "binary" (default) or "gob"
	metricsAddr   string        // empty disables the admin endpoint
	metricsLinger time.Duration // keep the admin endpoint up after the run
	eventsPath    string        // JSONL event log path ("-" = stderr; empty disables)
	logLevel      string        // minimum event level
	timelinePath  string        // Chrome trace output path (empty disables)
	obs           obsOptions    // time-series store, SLO rules, continuous profiling

	checkpointDir   string        // durable run snapshots + liveness lease (empty disables)
	checkpointEvery int           // checkpoint period in steps (0 = default)
	restore         bool          // resume from the newest valid checkpoint
	standby         bool          // warm standby: wait for the primary's lease to lapse, then restore
	leaseTTL        time.Duration // primary-liveness lease TTL (0 = default 5s)
	recordsOut      string        // write the run's records/params as JSON here (empty disables)

	out io.Writer // defaults to os.Stdout
}

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7000", "listen address")
		n         = flag.Int("n", 4, "number of workers / partitions")
		c         = flag.Int("c", 2, "partitions per worker")
		scheme    = flag.String("scheme", "cr", "placement scheme: fr, cr, or hr")
		c1        = flag.Int("c1", 1, "HR upper rows (scheme=hr)")
		g         = flag.Int("g", 2, "HR group count (scheme=hr)")
		w         = flag.Int("w", 0, "workers to wait for per step (0 = all)")
		deadline  = flag.Duration("deadline", 0, "per-step gather deadline (overrides -w when > 0)")
		pipeline  = flag.Bool("pipeline", false, "overlap the next step's broadcast with the previous gather's tail (staleness 0 stays bit-identical to the synchronous loop; excludes -deadline)")
		staleness = flag.Int("staleness", 0, "bounded staleness: wait for this many fewer workers per step and fold late gradients in as exact corrections (implies -pipeline; flexible schemes only)")
		shards    = flag.Int("gather-shards", 0, "cap the gather lanes granted to binaryv2 workers (0 = accept proposals up to the protocol max, 1 = negotiate down to single-stream binaryv1)")
		lr        = flag.Float64("lr", 0.2, "learning rate")
		batch     = flag.Int("batch", 8, "per-partition batch size (must match workers)")
		maxSteps  = flag.Int("steps", 200, "maximum steps")
		threshold = flag.Float64("threshold", 0.3, "loss threshold (0 disables)")
		seed      = flag.Int64("seed", 42, "shared seed (must match workers)")
		samples   = flag.Int("samples", 240, "synthetic dataset size (must match workers)")

		wire        = flag.String("wire", "binary", "wire codec for the gradient/params hot path: binary or gob")
		computePar  = flag.Int("compute-par", 0, "loss-evaluation compute shards (0 = auto/GOMAXPROCS, 1 = sequential)")
		decodeCache = flag.Int("decode-cache", 0, "memoize decode results in an LRU of this many availability masks (0 disables; trades decode fairness for speed)")
		decodeIncr  = flag.Bool("decode-incremental", false, "repair the previous step's chosen set against availability deltas instead of re-solving (trades decode fairness for latency)")
		liveness    = flag.Duration("liveness", 15*time.Second, "declare a worker dead after this much silence (negative disables)")
		stepTimeout = flag.Duration("step-timeout", 0, "bound one step's gather even with live workers (0 disables)")

		metricsAddr   = flag.String("metrics-addr", "", "serve /metrics, /healthz, /debug/pprof on this address (empty disables)")
		metricsLinger = flag.Duration("metrics-linger", 0, "keep the metrics endpoint up this long after training ends")

		eventsPath   = flag.String("events", "", "write a JSONL structured event log to this path (\"-\" = stderr)")
		logLevel     = flag.String("log-level", "info", "minimum event level: debug, info, warn, or error")
		timelinePath = flag.String("timeline", "", "write a Chrome trace-event file of the run to this path (load in ui.perfetto.dev)")

		obsInterval  = flag.Duration("obs-interval", time.Second, "time-series sampling period for /api/timeseries and /debug/dash")
		obsRetention = flag.Int("obs-retention", 0, "samples retained per series (0 = 600)")

		profileDir      = flag.String("profile-dir", "", "continuous profiling: periodically capture CPU+heap pprof profiles into this directory (empty disables)")
		profileInterval = flag.Duration("profile-interval", time.Minute, "continuous profiling capture period")
		profileKeep     = flag.Int("profile-keep", 0, "retained captures per profile kind (0 = 20)")

		sloRecoveredFloor = flag.Float64("slo-recovered-floor", 0, "SLO: fire when the recovered fraction sits below this floor (0 disables)")
		sloGatherP95      = flag.Duration("slo-gather-p95", 0, "SLO: fire when the windowed gather p95 exceeds this (0 disables)")
		sloWindow         = flag.Duration("slo-window", 30*time.Second, "SLO evaluation window")

		checkpointDir   = flag.String("checkpoint-dir", "", "persist durable run snapshots (and the liveness lease) in this directory (empty disables)")
		checkpointEvery = flag.Int("checkpoint-every", 10, "checkpoint period in steps")
		restore         = flag.Bool("restore", false, "resume from the newest valid checkpoint in -checkpoint-dir (cold-starts when the directory is empty)")
		standby         = flag.Bool("standby", false, "warm standby: wait for the primary's lease in -checkpoint-dir to lapse, then restore and take over")
		leaseTTL        = flag.Duration("lease-ttl", 5*time.Second, "primary-liveness lease TTL; a standby takes over after the lease is this stale")
		recordsOut      = flag.String("records-out", "", "write the run's step records and final params as JSON to this path (empty disables)")

		controlplane = flag.Bool("controlplane", false, "run as a multi-job control plane instead of a single-run master (see -fleet-addr, -state-dir; jobs are submitted via the admin /jobs API or isgc-ctl)")
		fleetAddr    = flag.String("fleet-addr", "127.0.0.1:7100", "control plane: fleet listener address for isgc-worker -fleet agents")
		stateDir     = flag.String("state-dir", "", "control plane: durable state directory (per-job checkpoints + scheduler state; empty disables)")
		agentTimeout = flag.Duration("agent-timeout", 0, "control plane: declare a silent fleet agent dead after this (0 = 5s)")

		version = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Get())
		return
	}
	obsOpts := obsOptions{
		sampleInterval:    *obsInterval,
		retention:         *obsRetention,
		profileDir:        *profileDir,
		profileInterval:   *profileInterval,
		profileKeep:       *profileKeep,
		sloRecoveredFloor: *sloRecoveredFloor,
		sloGatherP95:      *sloGatherP95,
		sloWindow:         *sloWindow,
	}
	if *controlplane {
		err := runControlPlane(cpOptions{
			fleetAddr:    *fleetAddr,
			stateDir:     *stateDir,
			restore:      *restore,
			agentTimeout: *agentTimeout,
			metricsAddr:  *metricsAddr,
			eventsPath:   *eventsPath,
			logLevel:     *logLevel,
			obs:          obsOpts,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "isgc-master:", err)
			os.Exit(1)
		}
		return
	}
	spec := cliconfig.SchemeSpec{Scheme: *scheme, N: *n, C: *c, C1: *c1, G: *g}
	data := cliconfig.DefaultData(*seed)
	data.Samples = *samples
	data.Batch = *batch
	err := run(options{
		addr:          *addr,
		spec:          spec,
		data:          data,
		w:             *w,
		deadline:      *deadline,
		pipeline:      *pipeline,
		staleness:     *staleness,
		gatherShards:  *shards,
		lr:            *lr,
		maxSteps:      *maxSteps,
		threshold:     *threshold,
		wire:          *wire,
		liveness:      *liveness,
		stepTimeout:   *stepTimeout,
		computePar:    *computePar,
		decodeCache:   *decodeCache,
		decodeIncr:    *decodeIncr,
		metricsAddr:   *metricsAddr,
		metricsLinger: *metricsLinger,
		eventsPath:    *eventsPath,
		logLevel:      *logLevel,
		timelinePath:  *timelinePath,
		obs:           obsOpts,

		checkpointDir:   *checkpointDir,
		checkpointEvery: *checkpointEvery,
		restore:         *restore,
		standby:         *standby,
		leaseTTL:        *leaseTTL,
		recordsOut:      *recordsOut,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "isgc-master:", err)
		os.Exit(1)
	}
}

func run(opts options) error {
	out := opts.out
	if out == nil {
		out = os.Stdout
	}
	p, err := opts.spec.Build()
	if err != nil {
		return err
	}
	st, err := engine.NewISGC(isgc.New(p, opts.data.Seed))
	if err != nil {
		return err
	}
	data, err := opts.data.BuildDataset()
	if err != nil {
		return err
	}
	w := opts.w
	if w <= 0 {
		w = opts.spec.N
	}

	var mm *cluster.MasterMetrics
	var reg *metrics.Registry
	if opts.metricsAddr != "" {
		reg = metrics.NewRegistry()
		mm = cluster.NewMasterMetrics(reg)
	}
	// The event log exists when requested explicitly or when the admin
	// endpoint needs a ring to serve on /debug/events; otherwise it stays
	// nil and instrumentation costs one branch per call site.
	var ev *events.Log
	if opts.eventsPath != "" || opts.metricsAddr != "" {
		log, closer, err := cliconfig.OpenEventLog(opts.eventsPath, opts.logLevel)
		if err != nil {
			return err
		}
		if closer != nil {
			defer closer.Close()
		}
		ev = log
	}
	var tl *events.Timeline
	if opts.timelinePath != "" || opts.metricsAddr != "" {
		tl = events.NewTimeline(0)
	}

	// The time-series store and SLO engine only make sense with an admin
	// endpoint to serve them; the profiler runs regardless — a headless
	// run can still leave profiles on disk.
	tsStore, sloRules, profiler, stopObs, err := buildObs(opts.obs, ev, opts.metricsAddr != "")
	if err != nil {
		return err
	}
	defer stopObs()
	tsStore.AddSource("master", reg, nil)

	var store *checkpoint.Store
	if opts.checkpointDir != "" {
		store, err = checkpoint.NewStore(opts.checkpointDir, checkpoint.DefaultRetain)
		if err != nil {
			return err
		}
	}

	// SIGINT/SIGTERM trigger a graceful shutdown: the master winds down at
	// the next step boundary, writes a final resumable checkpoint, and the
	// process exits 0 with the fleet left running for a successor.
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	stopCh := make(chan struct{})
	go func() {
		<-sigCh
		close(stopCh)
	}()

	restore := opts.restore
	if opts.standby {
		if store == nil {
			return fmt.Errorf("-standby needs -checkpoint-dir")
		}
		fmt.Fprintf(out, "standby: watching %s for the primary's lease to lapse (ttl=%v)\n",
			opts.checkpointDir, opts.leaseTTL)
		if err := cluster.WaitForTakeover(store, opts.leaseTTL, stopCh, ev); err != nil {
			if errors.Is(err, cluster.ErrStandbyStopped) {
				fmt.Fprintln(out, "standby: stopped before takeover")
				return nil
			}
			return err
		}
		fmt.Fprintln(out, "standby: taking over as primary")
		restore = true
	}

	master, err := cluster.NewMaster(cluster.MasterConfig{
		Addr:              opts.addr,
		Strategy:          st,
		Model:             model.SoftmaxRegression{Features: opts.data.Features, Classes: opts.data.Classes},
		Data:              data,
		LearningRate:      opts.lr,
		W:                 w,
		Deadline:          opts.deadline,
		Pipeline:          opts.pipeline,
		Staleness:         opts.staleness,
		GatherShards:      opts.gatherShards,
		MaxSteps:          opts.maxSteps,
		LossThreshold:     opts.threshold,
		Seed:              opts.data.Seed,
		Wire:              opts.wire,
		LivenessTimeout:   opts.liveness,
		StepTimeout:       opts.stepTimeout,
		ComputePar:        opts.computePar,
		DecodeCache:       opts.decodeCache,
		IncrementalDecode: opts.decodeIncr,
		Metrics:           mm,
		Events:            ev,
		Timeline:          tl,
		Checkpoint:        store,
		CheckpointEvery:   opts.checkpointEvery,
		Restore:           restore,
		LeaseTTL:          opts.leaseTTL,
	})
	if err != nil {
		return err
	}
	go func() {
		<-stopCh
		master.Stop()
	}()
	if opts.metricsAddr != "" {
		adm := admin.New(admin.Config{
			Addr:       opts.metricsAddr,
			Registry:   reg,
			Health:     func() any { return master.Health() },
			Events:     ev,
			Timeline:   tl,
			TimeSeries: tsStore,
			Alerts:     sloRules,
			Profiles:   profiler,
		})
		if err := adm.Start(); err != nil {
			return fmt.Errorf("metrics endpoint: %w", err)
		}
		defer func() {
			if opts.metricsLinger > 0 {
				fmt.Fprintf(out, "metrics: lingering %v on %s\n", opts.metricsLinger, adm.URL())
				time.Sleep(opts.metricsLinger)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = adm.Shutdown(ctx)
		}()
		fmt.Fprintf(out, "metrics: %s/metrics (healthz, debug/pprof alongside)\n", adm.URL())
		fmt.Fprintf(out, "dashboard: %s/debug/dash (timeseries: /api/timeseries, alerts: /api/alerts)\n", adm.URL())
	}
	if profiler != nil {
		fmt.Fprintf(out, "profiling: capturing cpu+heap to %s every %v\n", profiler.Dir(), opts.obs.profileInterval)
	}

	fmt.Fprintf(out, "master: %s on %s, waiting for %d workers (w=%d per step, deadline=%v, liveness=%v, wire=%s)\n",
		p, master.Addr(), opts.spec.N, w, opts.deadline, opts.liveness, opts.wire)
	res, err := master.Run()
	if opts.timelinePath != "" {
		// Written even on a failed run: a trace of what happened before the
		// failure is exactly what the operator wants to look at.
		if werr := tl.WriteFile(opts.timelinePath); werr != nil {
			fmt.Fprintf(out, "timeline: %v\n", werr)
		} else {
			fmt.Fprintf(out, "timeline: wrote %s (load in ui.perfetto.dev)\n", opts.timelinePath)
		}
	}
	if err != nil {
		return err
	}
	if opts.recordsOut != "" {
		if werr := writeRecords(opts.recordsOut, res); werr != nil {
			fmt.Fprintf(out, "records-out: %v\n", werr)
		}
	}
	for _, rec := range res.Run.Records {
		mark := ""
		if rec.Degraded {
			mark = " DEGRADED"
		}
		fmt.Fprintf(out, "step %3d: avail=%d alive=%d recovered=%.2f loss=%.4f elapsed=%v%s\n",
			rec.Step, rec.Available, rec.Alive, rec.RecoveredFraction, rec.Loss, rec.Elapsed, mark)
	}
	if res.Interrupted {
		fmt.Fprintf(out, "interrupted: %d steps recorded this life; resumable checkpoint in %s (restart with -restore)\n",
			res.Run.Steps(), opts.checkpointDir)
		return nil
	}
	// The latency line prefers the histogram estimate when metrics are on
	// — the same digest /healthz and the dashboard serve — and falls back
	// to exact order statistics over the retained trace records.
	lat := res.Run.LatencySummary()
	if hl, ok := mm.LatencySummary(); ok {
		lat = hl
	}
	fmt.Fprintf(out, "latency: %v\n", lat)
	fmt.Fprint(out, master.AttributionReport().Table().String())
	fmt.Fprintf(out, "done: steps=%d converged=%v final_loss=%.4f total=%v degraded_steps=%d rejoins=%d malformed=%d\n",
		res.Run.Steps(), res.Converged, res.Run.FinalLoss(), res.Run.TotalTime(),
		res.Run.DegradedSteps(), master.Rejoins(), master.MalformedGradients())
	return nil
}

// runDump is the -records-out JSON shape: everything a crash-equivalence
// harness needs to compare two lives of one run.
type runDump struct {
	Records     []trace.StepRecord `json:"records"`
	Params      []float64          `json:"params"`
	Steps       int                `json:"steps"`
	Converged   bool               `json:"converged"`
	Interrupted bool               `json:"interrupted"`
}

func writeRecords(path string, res *engine.Result) error {
	b, err := json.Marshal(runDump{
		Records:     res.Run.Records,
		Params:      res.Params,
		Steps:       res.Run.Steps(),
		Converged:   res.Converged,
		Interrupted: res.Interrupted,
	})
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}
