package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe output collector for child processes.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// buildPlaneBinaries compiles the control-plane master, the fleet worker,
// and this CLI into a temp directory.
func buildPlaneBinaries(t *testing.T) (masterBin, workerBin, ctlBin string) {
	t.Helper()
	dir := t.TempDir()
	masterBin = filepath.Join(dir, "isgc-master")
	workerBin = filepath.Join(dir, "isgc-worker")
	ctlBin = filepath.Join(dir, "isgc-ctl")
	for _, b := range []struct{ out, pkg string }{
		{masterBin, "isgc/cmd/isgc-master"},
		{workerBin, "isgc/cmd/isgc-worker"},
		{ctlBin, "isgc/cmd/isgc-ctl"},
	} {
		cmd := exec.Command("go", "build", "-o", b.out, b.pkg)
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", b.pkg, err, out)
		}
	}
	return masterBin, workerBin, ctlBin
}

// ctl runs one isgc-ctl command against the plane and returns its output.
func ctl(t *testing.T, ctlBin, base string, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(ctlBin, append([]string{"-addr", base, "-timeout", "150s"}, args...)...)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

// planeJobs decodes GET /jobs — the test's window into assignments, used
// to pick a victim agent that is actually running the elastic job.
func planeJobs(t *testing.T, base string) []map[string]any {
	t.Helper()
	resp, err := http.Get(base + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Jobs []map[string]any `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Jobs
}

// TestE2EControlPlane is the control plane's process-level acceptance run:
// a `-controlplane` master and six fleet workers as real processes,
// isgc-ctl submits three jobs, one worker process is SIGKILLed while its
// job runs, and `isgc-ctl wait` must see all three jobs complete — the
// affected one after a live re-placement.
func TestE2EControlPlane(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping binary e2e in -short mode")
	}
	masterBin, workerBin, ctlBin := buildPlaneBinaries(t)

	fleetAddr := freeAddr(t)
	adminAddr := freeAddr(t)
	base := "http://" + adminAddr

	// The SLO flags arm the recovered-fraction floor: every job here runs
	// cr(3,2), whose best decode recovers 2 of 3 partitions (0.67 < 0.9),
	// so the floor rule must fire while jobs run — and `isgc-ctl alerts`
	// must show it.
	master := exec.Command(masterBin,
		"-controlplane", "-fleet-addr", fleetAddr, "-metrics-addr", adminAddr,
		"-state-dir", filepath.Join(t.TempDir(), "state"),
		"-obs-interval", "100ms", "-slo-recovered-floor", "0.9", "-slo-window", "1s")
	masterOut := &syncBuffer{}
	master.Stdout = masterOut
	master.Stderr = masterOut
	if err := master.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = master.Process.Kill() }()

	// The plane binds the fleet listener before the admin server, so an
	// answering admin API means agents can join — agents dial once and
	// exit on a refused connection, so don't start them earlier.
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base + "/fleet")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("admin API never came up\n%s", masterOut.String())
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Six fleet agents with stable names, so GET /jobs assignments map
	// straight to processes.
	workers := make(map[string]*exec.Cmd, 6)
	workerOuts := make(map[string]*syncBuffer, 6)
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("w-%d", i)
		w := exec.Command(workerBin, "-fleet", fleetAddr, "-agent-name", name)
		wOut := &syncBuffer{}
		w.Stdout = wOut
		w.Stderr = wOut
		if err := w.Start(); err != nil {
			t.Fatal(err)
		}
		workers[name] = w
		workerOuts[name] = wOut
	}
	defer func() {
		for _, w := range workers {
			_ = w.Process.Kill()
			_ = w.Wait()
		}
	}()

	// Wait for the full fleet.
	deadline = time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base + "/fleet")
		alive := 0
		if err == nil {
			var out struct {
				Agents []struct {
					Alive bool `json:"alive"`
				} `json:"agents"`
			}
			_ = json.NewDecoder(resp.Body).Decode(&out)
			resp.Body.Close()
			for _, a := range out.Agents {
				if a.Alive {
					alive++
				}
			}
		}
		if alive == 6 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never reached 6 agents (have %d)\nmaster:\n%s\nworker w-0:\n%s",
				alive, masterOut.String(), workerOuts["w-0"].String())
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Two quick jobs via flags, one long "elastic" job via a full spec:
	// tight liveness windows plus generation-0 delays keep it running long
	// enough for the SIGKILL below to land mid-run.
	submit := func(args ...string) string {
		out, err := ctl(t, ctlBin, base, append([]string{"submit"}, args...)...)
		if err != nil {
			t.Fatalf("submit: %v\n%s", err, out)
		}
		return strings.TrimSpace(out)
	}
	idQuick1 := submit("-name", "quick-1", "-scheme", "cr", "-n", "3", "-c", "2", "-steps", "30", "-seed", "42")
	idQuick2 := submit("-name", "quick-2", "-scheme", "cr", "-n", "3", "-c", "2", "-steps", "30", "-seed", "43")
	specPath := filepath.Join(t.TempDir(), "elastic.json")
	spec := `{
		"name": "elastic",
		"scheme": {"scheme": "cr", "n": 3, "c": 2},
		"data": {"samples": 240, "features": 6, "classes": 3, "batch": 8, "separation": 1.5, "seed": 7},
		"max_steps": 80,
		"liveness_timeout": 300000000,
		"permanent_after": 600000000,
		"faults": [
			{"worker": 0, "crash_at_step": -1, "delay": 30000000},
			{"worker": 1, "crash_at_step": -1, "delay": 30000000},
			{"worker": 2, "crash_at_step": -1, "delay": 30000000}
		]
	}`
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	idElastic := submit("-spec", specPath)

	// Find an agent actually assigned to the elastic job while it runs,
	// then SIGKILL its process — an abrupt machine loss, no goodbye.
	var victim string
	deadline = time.Now().Add(60 * time.Second)
	for victim == "" {
		for _, j := range planeJobs(t, base) {
			if j["id"] != idElastic || j["state"] != "running" {
				continue
			}
			step, _ := j["step"].(float64)
			ws, _ := j["workers"].([]any)
			if step >= 5 && len(ws) > 0 {
				last := ws[len(ws)-1].(map[string]any)
				victim, _ = last["agent"].(string)
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("elastic job never got running assignments\n%s", masterOut.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	w, ok := workers[victim]
	if !ok {
		t.Fatalf("plane assigned unknown agent %q", victim)
	}
	if err := w.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = w.Wait()
	delete(workers, victim)

	// While the elastic job is still grinding below the floor, the SLO
	// engine fires and `isgc-ctl alerts` renders it.
	deadline = time.Now().Add(60 * time.Second)
	for {
		out, _ := ctl(t, ctlBin, base, "alerts")
		// " firing " matches the padded STATE column, not the summary
		// line's firing=N counter.
		if strings.Contains(out, "recovered-fraction-floor") && strings.Contains(out, " firing ") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("isgc-ctl alerts never showed the floor rule firing:\n%s\nmaster:\n%s",
				out, masterOut.String())
		}
		time.Sleep(100 * time.Millisecond)
	}
	// The -firing gate form exits non-zero while an alert is live.
	if out, err := ctl(t, ctlBin, base, "alerts", "-firing"); err == nil {
		t.Fatalf("isgc-ctl alerts -firing should exit non-zero during a breach:\n%s", out)
	}

	// The CLI gate CI asserts: wait exits 0 only when every job completes.
	out, err := ctl(t, ctlBin, base, "wait", idQuick1, idQuick2, idElastic)
	if err != nil {
		t.Fatalf("isgc-ctl wait: %v\n%s\nmaster:\n%s", err, out, masterOut.String())
	}
	for _, id := range []string{idQuick1, idQuick2, idElastic} {
		if !strings.Contains(out, id+": completed") {
			t.Fatalf("wait output missing %q:\n%s", id+": completed", out)
		}
	}

	// The killed agent's job must have gone through a live re-placement.
	for _, j := range planeJobs(t, base) {
		if j["id"] != idElastic {
			continue
		}
		if repl, _ := j["replacements"].(float64); repl == 0 {
			t.Fatalf("elastic job completed without a re-placement: %v", j)
		}
		for _, wv := range j["workers"].([]any) {
			if wv.(map[string]any)["agent"] == victim {
				t.Fatalf("killed agent %s still in the final assignment: %v", victim, j)
			}
		}
	}

	// Status renders all three jobs.
	out, err = ctl(t, ctlBin, base, "status")
	if err != nil {
		t.Fatalf("isgc-ctl status: %v\n%s", err, out)
	}
	for _, id := range []string{idQuick1, idQuick2, idElastic} {
		if !strings.Contains(out, id) {
			t.Fatalf("status output missing %s:\n%s", id, out)
		}
	}
}
