// Command isgc-ctl is the operator CLI for a control-plane master
// (isgc-master -controlplane). It speaks the plane's admin HTTP API:
//
//	isgc-ctl -addr http://127.0.0.1:9100 submit -scheme cr -n 4 -c 2 -steps 80
//	isgc-ctl -addr ... submit -spec job.json         # full JobSpec as JSON
//	isgc-ctl -addr ... status                        # all jobs
//	isgc-ctl -addr ... status job-001                # one job (full JSON)
//	isgc-ctl -addr ... fleet                         # agent pool
//	isgc-ctl -addr ... alerts                        # SLO rule states
//	isgc-ctl -addr ... alerts -firing                # firing alerts only (exit 1 if any)
//	isgc-ctl -addr ... drain job-001                 # quiesce + keep resumable
//	isgc-ctl -addr ... kill job-001                  # terminate
//	isgc-ctl -addr ... wait job-001 job-002          # block until terminal
//
// wait exits 0 only when every awaited job completes; a failed, killed, or
// drained job (or the -timeout) makes it exit 1, which is what CI asserts.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"isgc/internal/buildinfo"
	"isgc/internal/cliconfig"
	"isgc/internal/controlplane"
	"isgc/internal/obs"
)

func main() {
	var (
		addr    = flag.String("addr", "http://127.0.0.1:9100", "control plane admin API base URL")
		timeout = flag.Duration("timeout", 2*time.Minute, "overall budget for wait")
		version = flag.Bool("version", false, "print build information and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: isgc-ctl [-addr URL] <submit|status|fleet|alerts|drain|kill|wait> [args]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Get())
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	c := &client{base: strings.TrimRight(*addr, "/")}
	var err error
	switch args[0] {
	case "submit":
		err = cmdSubmit(c, args[1:])
	case "status":
		err = cmdStatus(c, args[1:])
	case "fleet":
		err = cmdFleet(c)
	case "alerts":
		err = cmdAlerts(c, args[1:])
	case "drain":
		err = cmdLifecycle(c, "drain", args[1:])
	case "kill":
		err = cmdLifecycle(c, "kill", args[1:])
	case "wait":
		err = cmdWait(c, args[1:], *timeout)
	default:
		fmt.Fprintf(os.Stderr, "isgc-ctl: unknown command %q\n", args[0])
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "isgc-ctl:", err)
		os.Exit(1)
	}
}

// client is a thin JSON-over-HTTP wrapper around the plane API.
type client struct {
	base string
	http http.Client
}

// do performs one API call and decodes the JSON response into out (when
// non-nil). Non-2xx responses surface the server's error envelope.
func (c *client) do(method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var apiErr struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(raw, &apiErr) == nil && apiErr.Error != "" {
			return fmt.Errorf("%s %s: %s", method, path, apiErr.Error)
		}
		return fmt.Errorf("%s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

func cmdSubmit(c *client, args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	var (
		specPath  = fs.String("spec", "", "read the full JobSpec as JSON from this file (\"-\" = stdin; overrides the scheme flags)")
		name      = fs.String("name", "", "human job label")
		scheme    = fs.String("scheme", "cr", "placement scheme: fr, cr, or hr")
		n         = fs.Int("n", 4, "number of workers / partitions")
		cFlag     = fs.Int("c", 2, "partitions per worker")
		c1        = fs.Int("c1", 1, "HR upper rows (scheme=hr)")
		g         = fs.Int("g", 2, "HR group count (scheme=hr)")
		w         = fs.Int("w", 0, "workers to wait for per step (0 = all)")
		steps     = fs.Int("steps", 100, "maximum steps")
		lr        = fs.Float64("lr", 0.2, "learning rate")
		threshold = fs.Float64("threshold", 0, "loss threshold (0 disables)")
		seed      = fs.Int64("seed", 42, "shared data seed")
		samples   = fs.Int("samples", 240, "synthetic dataset size")
		batch     = fs.Int("batch", 8, "per-partition batch size")
		wire      = fs.String("wire", "", "wire codec: binary (default) or gob")
	)
	_ = fs.Parse(args)
	var spec controlplane.JobSpec
	if *specPath != "" {
		var raw []byte
		var err error
		if *specPath == "-" {
			raw, err = io.ReadAll(os.Stdin)
		} else {
			raw, err = os.ReadFile(*specPath)
		}
		if err != nil {
			return err
		}
		if err := json.Unmarshal(raw, &spec); err != nil {
			return fmt.Errorf("bad spec %s: %w", *specPath, err)
		}
	} else {
		data := cliconfig.DefaultData(*seed)
		data.Samples = *samples
		data.Batch = *batch
		spec = controlplane.JobSpec{
			Name:          *name,
			Scheme:        cliconfig.SchemeSpec{Scheme: *scheme, N: *n, C: *cFlag, C1: *c1, G: *g},
			Data:          data,
			W:             *w,
			LearningRate:  *lr,
			MaxSteps:      *steps,
			LossThreshold: *threshold,
			Wire:          *wire,
		}
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := c.do(http.MethodPost, "/jobs", spec, &out); err != nil {
		return err
	}
	fmt.Println(out.ID)
	return nil
}

func cmdStatus(c *client, args []string) error {
	if len(args) > 0 {
		var st controlplane.JobStatus
		if err := c.do(http.MethodGet, "/jobs/"+args[0], nil, &st); err != nil {
			return err
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(st)
	}
	var out struct {
		Jobs []controlplane.JobStatus `json:"jobs"`
	}
	if err := c.do(http.MethodGet, "/jobs", nil, &out); err != nil {
		return err
	}
	fmt.Printf("%-10s %-12s %-10s %-14s %6s %5s %4s %8s\n",
		"ID", "NAME", "STATE", "SCHEME", "STEP", "GEN", "N", "LOSS")
	for _, j := range out.Jobs {
		loss := "-"
		if j.FinalLoss != 0 {
			loss = fmt.Sprintf("%.4f", j.FinalLoss)
		}
		fmt.Printf("%-10s %-12s %-10s %-14s %3d/%-3d %5d %4d %8s\n",
			j.ID, j.Name, j.State, j.Scheme, j.Step, j.MaxSteps, j.Generation, j.N, loss)
	}
	return nil
}

func cmdFleet(c *client) error {
	var out struct {
		Agents []controlplane.AgentView `json:"agents"`
	}
	if err := c.do(http.MethodGet, "/fleet", nil, &out); err != nil {
		return err
	}
	fmt.Printf("%-20s %-6s %-10s %-7s %s\n", "AGENT", "ALIVE", "JOB", "WORKER", "LAST-SEEN")
	for _, a := range out.Agents {
		job := a.JobID
		if job == "" {
			job = "-"
		}
		fmt.Printf("%-20s %-6v %-10s %-7d %.1fs ago\n", a.Name, a.Alive, job, a.WorkerID, a.LastSeenAgeSeconds)
	}
	return nil
}

// cmdAlerts prints the SLO rule engine's alert table from /api/alerts.
// With -firing it lists only firing alerts and exits non-zero when any
// exist, so a deploy script can gate on `isgc-ctl alerts -firing`.
func cmdAlerts(c *client, args []string) error {
	fs := flag.NewFlagSet("alerts", flag.ExitOnError)
	firingOnly := fs.Bool("firing", false, "list only firing alerts; exit 1 when any are firing")
	_ = fs.Parse(args)
	var out struct {
		Summary obs.Summary `json:"summary"`
		Alerts  []obs.Alert `json:"alerts"`
	}
	if err := c.do(http.MethodGet, "/api/alerts", nil, &out); err != nil {
		return err
	}
	alerts := out.Alerts
	if *firingOnly {
		alerts = alerts[:0]
		for _, a := range out.Alerts {
			if a.State == obs.StateFiring {
				alerts = append(alerts, a)
			}
		}
	}
	fmt.Printf("%-28s %-8s %-8s %-20s %10s %10s %s\n",
		"RULE", "STATE", "SEV", "LABELS", "VALUE", "BOUND", "SINCE")
	for _, a := range alerts {
		labels := "-"
		if len(a.Labels) > 0 {
			parts := make([]string, 0, len(a.Labels))
			for k, v := range a.Labels {
				parts = append(parts, k+"="+v)
			}
			sort.Strings(parts)
			labels = strings.Join(parts, ",")
		}
		fmt.Printf("%-28s %-8s %-8s %-20s %10.4g %10.4g %s\n",
			a.Rule, a.State, a.Severity, labels, a.Value, a.Bound, a.Since.Format(time.RFC3339))
	}
	fmt.Printf("rules=%d firing=%d pending=%d\n",
		out.Summary.Rules, out.Summary.Firing, out.Summary.Pending)
	if *firingOnly && len(alerts) > 0 {
		return fmt.Errorf("%d alert(s) firing", len(alerts))
	}
	return nil
}

func cmdLifecycle(c *client, verb string, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: isgc-ctl %s <job-id>", verb)
	}
	var out struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	var err error
	if verb == "kill" {
		err = c.do(http.MethodDelete, "/jobs/"+args[0], nil, &out)
	} else {
		err = c.do(http.MethodPost, "/jobs/"+args[0]+"/drain", nil, &out)
	}
	if err != nil {
		return err
	}
	fmt.Printf("%s: %s\n", out.ID, out.State)
	return nil
}

// cmdWait polls until every awaited job (all jobs when none are named) is
// terminal, then succeeds only if they all completed.
func cmdWait(c *client, ids []string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		var out struct {
			Jobs []controlplane.JobStatus `json:"jobs"`
		}
		if err := c.do(http.MethodGet, "/jobs", nil, &out); err != nil {
			return err
		}
		byID := make(map[string]controlplane.JobStatus, len(out.Jobs))
		for _, j := range out.Jobs {
			byID[j.ID] = j
		}
		watch := ids
		if len(watch) == 0 {
			watch = watch[:0]
			for _, j := range out.Jobs {
				watch = append(watch, j.ID)
			}
		}
		allDone, allCompleted := true, true
		for _, id := range watch {
			j, ok := byID[id]
			if !ok {
				return fmt.Errorf("no job %q", id)
			}
			switch j.State {
			case controlplane.JobCompleted:
			case controlplane.JobFailed, controlplane.JobKilled, controlplane.JobDrained:
				allCompleted = false
			default:
				allDone = false
			}
		}
		if allDone {
			for _, id := range watch {
				j := byID[id]
				fmt.Printf("%s: %s (steps=%d/%d generations=%d replacements=%d converged=%v)\n",
					j.ID, j.State, j.Step, j.MaxSteps, j.Generation+1, j.Replacements, j.Converged)
			}
			if !allCompleted {
				return fmt.Errorf("not all jobs completed")
			}
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("timed out after %v waiting for %v", timeout, watch)
		}
		time.Sleep(200 * time.Millisecond)
	}
}
