// Command isgc-loadgen stress-drives the IS-GC decoder at fleet scale
// (up to 50k virtual workers) under configurable availability churn, and
// reports per-step decode latency (mean/p50/p95) plus decode throughput in
// the benchmark line grammar that `isgc-bench` ingests:
//
//	isgc-loadgen -scheme cr -n 50000 -c 8 -steps 2000 -churn drift \
//	    -mode both | isgc-bench > BENCH_PR9.json
//
// Churn models (all maintain the availability mask in place — the mask is
// never rebuilt, matching how a long-running master observes the fleet):
//
//	drift       — a fixed number (-rate) of random available workers depart
//	              each step and return five steps later: the steady
//	              one-worker-per-step trickle of a healthy large fleet.
//	bernoulli   — the number of departures per step is Poisson(-rate) and
//	              each departed worker returns after a geometric delay:
//	              memoryless node-level failures.
//	bursty      — background drift plus occasional contiguous blocks of
//	              n/64 workers departing at once (rack/switch events).
//	adversarial — departures target the decoder's *current chosen set*,
//	              forcing a repair (never a free no-chosen-departed step)
//	              on every single step.
//
// Virtual time comes from internal/simclock: each step samples per-worker
// finish times for a heterogeneous fleet and charges the master the max
// finish time over the available workers, reported as sim-ms-per-step.
//
// With -mode both the fresh and incremental passes replay the same churn
// sequence (same seed) and the tool emits a .../speedup line carrying the
// p95 and mean latency ratios.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"sort"
	"time"

	"isgc/internal/bitset"
	"isgc/internal/isgc"
	"isgc/internal/placement"
	"isgc/internal/simclock"
)

type options struct {
	scheme         string
	n, c           int
	hrC1, hrC2     int
	hrGroups       int
	steps          int
	churn          string
	rate           float64
	seed           int64
	mode           string
	verify         bool
	requireRepairs bool
	minP95Speedup  float64
}

func main() {
	var opts options
	fs := flag.NewFlagSet("isgc-loadgen", flag.ExitOnError)
	fs.StringVar(&opts.scheme, "scheme", "cr", "placement scheme: fr, cr, or hr")
	fs.IntVar(&opts.n, "n", 50000, "number of virtual workers (and partitions)")
	fs.IntVar(&opts.c, "c", 8, "partitions per worker (fr/cr)")
	fs.IntVar(&opts.hrC1, "hr-c1", 4, "hr: fractional-repetition partitions per worker")
	fs.IntVar(&opts.hrC2, "hr-c2", 4, "hr: circulant partitions per worker")
	fs.IntVar(&opts.hrGroups, "hr-groups", 5000, "hr: number of groups")
	fs.IntVar(&opts.steps, "steps", 2000, "training steps to simulate")
	fs.StringVar(&opts.churn, "churn", "drift", "churn model: drift, bernoulli, bursty, or adversarial")
	fs.Float64Var(&opts.rate, "rate", 1, "expected departures per step")
	fs.Int64Var(&opts.seed, "seed", 1, "seed for churn and decoder tie-breaking")
	fs.StringVar(&opts.mode, "mode", "both", "decode path: fresh, incremental, or both")
	fs.BoolVar(&opts.verify, "verify", false,
		"cross-check every step against an independent fresh decode (slow; for smoke runs)")
	fs.BoolVar(&opts.requireRepairs, "require-repairs", false,
		"exit non-zero unless the incremental pass served at least one repair")
	fs.Float64Var(&opts.minP95Speedup, "min-p95-speedup", 0,
		"with -mode both, exit non-zero unless fresh-p95 / incremental-p95 reaches this ratio")
	fs.Parse(os.Args[1:])

	if err := run(opts, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "isgc-loadgen:", err)
		os.Exit(1)
	}
}

func run(opts options, out, errOut io.Writer) error {
	p, err := buildPlacement(opts)
	if err != nil {
		return err
	}
	if opts.steps <= 0 {
		return fmt.Errorf("need -steps > 0, got %d", opts.steps)
	}
	var modes []bool // incremental?
	switch opts.mode {
	case "fresh":
		modes = []bool{false}
	case "incremental":
		modes = []bool{true}
	case "both":
		modes = []bool{false, true}
	default:
		return fmt.Errorf("unknown -mode %q (want fresh, incremental, or both)", opts.mode)
	}

	results := make(map[bool]*passResult, len(modes))
	for _, incremental := range modes {
		res, err := runPass(p, opts, incremental)
		if err != nil {
			return err
		}
		results[incremental] = res
		emit(out, opts, p, res)
		fmt.Fprintf(errOut, "%s: steps=%d mean=%v p50=%v p95=%v repairs=%d fallbacks=%d full-solves=%d\n",
			res.label, opts.steps, res.mean, res.p50, res.p95,
			res.stats.Repairs, res.stats.Fallbacks, res.stats.FullSolves)
	}

	if opts.requireRepairs {
		inc, ok := results[true]
		if !ok {
			return fmt.Errorf("-require-repairs needs -mode incremental or both")
		}
		if inc.stats.Repairs == 0 {
			return fmt.Errorf("incremental pass served zero repairs (stats %+v)", inc.stats)
		}
	}
	if fresh, inc := results[false], results[true]; fresh != nil && inc != nil {
		p95x := ratio(fresh.p95, inc.p95)
		meanx := ratio(fresh.mean, inc.mean)
		fmt.Fprintf(out, "%s/speedup %d %.2f p95-x %.2f mean-x\n",
			benchName(opts, p), opts.steps, p95x, meanx)
		fmt.Fprintf(errOut, "speedup: p95 %.2fx, mean %.2fx\n", p95x, meanx)
		if opts.minP95Speedup > 0 && p95x < opts.minP95Speedup {
			return fmt.Errorf("p95 speedup %.2fx below required %.2fx", p95x, opts.minP95Speedup)
		}
	} else if opts.minP95Speedup > 0 {
		return fmt.Errorf("-min-p95-speedup needs -mode both")
	}
	return nil
}

func buildPlacement(opts options) (*placement.Placement, error) {
	switch opts.scheme {
	case "fr":
		return placement.FR(opts.n, opts.c, placement.Structural())
	case "cr":
		return placement.CR(opts.n, opts.c, placement.Structural())
	case "hr":
		return placement.HR(opts.n, opts.hrC1, opts.hrC2, opts.hrGroups, placement.Structural())
	default:
		return nil, fmt.Errorf("unknown -scheme %q (want fr, cr, or hr)", opts.scheme)
	}
}

type passResult struct {
	label           string // "fresh" or "incremental"
	mean, p50, p95  time.Duration
	stepsPerSec     float64
	simMsPerStep    float64
	stats           isgc.IncrementalStats
	finalChosenSize int
}

// runPass replays opts.steps churn steps against one decoder configuration
// and collects per-step decode latency. Only the Decode call is timed; the
// churn bookkeeping, verification, and simclock accounting sit outside the
// timer.
func runPass(p *placement.Placement, opts options, incremental bool) (*passResult, error) {
	scheme := isgc.New(p, opts.seed)
	label := "fresh"
	if incremental {
		scheme.EnableIncrementalDecode()
		label = "incremental"
	}
	var verifier *isgc.Scheme
	if opts.verify {
		verifier = isgc.New(p, opts.seed+1)
	}
	sim, err := simclock.New(simclock.Config{
		N:                   p.N(),
		ComputePerPartition: 200 * time.Microsecond,
		PartitionsPerWorker: p.C(),
		Upload:              50 * time.Microsecond,
		ComputeFactors:      heterogeneousFactors(p.N()),
	})
	if err != nil {
		return nil, err
	}
	ch, err := newChurner(opts, p.N())
	if err != nil {
		return nil, err
	}

	mask := bitset.New(p.N())
	for v := 0; v < p.N(); v++ {
		mask.Add(v)
	}
	lat := make([]time.Duration, 0, opts.steps)
	var decodeTotal, virtual time.Duration
	var chosen *bitset.Set
	for step := 0; step < opts.steps; step++ {
		times := sim.Step()
		start := time.Now()
		chosen = scheme.Decode(mask)
		d := time.Since(start)
		lat = append(lat, d)
		decodeTotal += d
		virtual += maxOverMask(times, mask)
		if verifier != nil {
			if err := verifyStep(p, verifier, mask, chosen); err != nil {
				return nil, fmt.Errorf("step %d: %w", step, err)
			}
		}
		ch.advance(mask, chosen)
	}

	sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
	res := &passResult{
		label:           label,
		mean:            decodeTotal / time.Duration(len(lat)),
		p50:             percentile(lat, 50),
		p95:             percentile(lat, 95),
		stats:           scheme.IncrementalDecodeStats(),
		finalChosenSize: chosen.Len(),
	}
	if decodeTotal > 0 {
		res.stepsPerSec = float64(opts.steps) / decodeTotal.Seconds()
	}
	res.simMsPerStep = virtual.Seconds() * 1e3 / float64(opts.steps)
	return res, nil
}

// verifyStep cross-checks one decode against an independent fresh solve:
// same |I| (every maximum independent set has the same size), chosen ⊆
// mask, and independence. The independence check is O(|I|): for all three
// placements, two conflicting chosen workers with no chosen worker between
// them are adjacent in sorted order (conflicts are confined to a group or a
// circular distance-< c window), so checking consecutive pairs plus the
// wrap-around pair suffices.
func verifyStep(p *placement.Placement, verifier *isgc.Scheme, mask, chosen *bitset.Set) error {
	want := verifier.Decode(mask).Len()
	if chosen.Len() != want {
		return fmt.Errorf("|I| = %d, fresh solve found %d", chosen.Len(), want)
	}
	first, prev := -1, -1
	var err error
	chosen.Range(func(w int) bool {
		if !mask.Contains(w) {
			err = fmt.Errorf("chosen worker %d not in availability mask", w)
			return false
		}
		if prev >= 0 && p.Conflicts(prev, w) {
			err = fmt.Errorf("chosen workers %d and %d conflict", prev, w)
			return false
		}
		if first < 0 {
			first = w
		}
		prev = w
		return true
	})
	if err != nil {
		return err
	}
	if first >= 0 && first != prev && p.Conflicts(prev, first) {
		return fmt.Errorf("chosen workers %d and %d conflict (wrap)", prev, first)
	}
	return nil
}

// churner mutates the availability mask in place according to the chosen
// model, tracking scheduled returns so the fleet size stays bounded.
type churner struct {
	model   string
	rng     *rand.Rand
	n       int
	rate    float64
	step    int
	returns map[int][]int // due step -> workers
}

func newChurner(opts options, n int) (*churner, error) {
	switch opts.churn {
	case "drift", "bernoulli", "bursty", "adversarial":
	default:
		return nil, fmt.Errorf("unknown -churn %q (want drift, bernoulli, bursty, or adversarial)", opts.churn)
	}
	if opts.rate <= 0 {
		return nil, fmt.Errorf("need -rate > 0, got %v", opts.rate)
	}
	return &churner{
		model:   opts.churn,
		rng:     rand.New(rand.NewSource(opts.seed * 2654435761)),
		n:       n,
		rate:    opts.rate,
		returns: make(map[int][]int),
	}, nil
}

// advance applies one churn step: scheduled returns re-enter the mask, then
// the model departs its victims. chosen is the decoder's current answer —
// only the adversarial model peeks at it.
func (c *churner) advance(mask, chosen *bitset.Set) {
	c.step++
	for _, w := range c.returns[c.step] {
		mask.Add(w)
	}
	delete(c.returns, c.step)

	switch c.model {
	case "drift":
		c.departRandom(mask, int(c.rate+0.5), 5)
	case "bernoulli":
		c.departRandom(mask, c.poisson(c.rate), 1+c.geometric(0.2))
	case "bursty":
		c.departRandom(mask, int(c.rate+0.5), 5)
		if c.rng.Intn(40) == 0 {
			c.departBlock(mask, max(2, c.n/64), 10)
		}
	case "adversarial":
		c.departChosen(mask, chosen, int(c.rate+0.5), 5)
	}
}

// departRandom removes k uniformly random available workers, scheduling
// their return delay steps later. It never empties the mask.
func (c *churner) departRandom(mask *bitset.Set, k, delay int) {
	for i := 0; i < k && mask.Len() > 1; i++ {
		w := mask.Select(c.rng.Intn(mask.Len()))
		mask.Remove(w)
		due := c.step + delay
		c.returns[due] = append(c.returns[due], w)
	}
}

// departBlock removes a contiguous block of available workers — a rack
// losing its uplink takes out neighboring indices at once.
func (c *churner) departBlock(mask *bitset.Set, size, delay int) {
	start := c.rng.Intn(c.n)
	due := c.step + delay
	for i := 0; i < size && mask.Len() > 1; i++ {
		w := (start + i) % c.n
		if mask.Contains(w) {
			mask.Remove(w)
			c.returns[due] = append(c.returns[due], w)
		}
	}
}

// departChosen targets members of the decoder's current chosen set, so
// every step forces a chosen-departure repair. Falls back to random
// departures when the chosen set is exhausted.
func (c *churner) departChosen(mask, chosen *bitset.Set, k, delay int) {
	victims := chosen.Clone()
	victims.IntersectWith(mask)
	for i := 0; i < k && mask.Len() > 1; i++ {
		if victims.Empty() {
			c.departRandom(mask, 1, delay)
			continue
		}
		w := victims.Select(c.rng.Intn(victims.Len()))
		victims.Remove(w)
		mask.Remove(w)
		due := c.step + delay
		c.returns[due] = append(c.returns[due], w)
	}
}

// poisson samples Poisson(mean) by Knuth's product-of-uniforms method
// (fine for the single-digit means loadgen uses).
func (c *churner) poisson(mean float64) int {
	l, threshold := 1.0, math.Exp(-mean)
	for i := 0; ; i++ {
		l *= c.rng.Float64()
		if l < threshold {
			return i
		}
	}
}

// geometric samples the number of failures before the first success of a
// Bernoulli(p) sequence.
func (c *churner) geometric(p float64) int {
	k := 0
	for c.rng.Float64() >= p {
		k++
	}
	return k
}

func heterogeneousFactors(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		// Deterministic spread in [1, 1.5): a mildly heterogeneous fleet.
		out[i] = 1 + 0.5*float64((i*2654435761)%1000)/1000
	}
	return out
}

// maxOverMask returns the latest finish time among available workers — the
// virtual wall time the master spends gathering this step.
func maxOverMask(times []time.Duration, mask *bitset.Set) time.Duration {
	var m time.Duration
	mask.Range(func(w int) bool {
		if times[w] > m {
			m = times[w]
		}
		return true
	})
	return m
}

func percentile(sorted []time.Duration, pct int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := len(sorted) * pct / 100
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func ratio(a, b time.Duration) float64 {
	if b <= 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func benchName(opts options, p *placement.Placement) string {
	name := fmt.Sprintf("BenchmarkLoadgenDecode/scheme=%s/n=%d/churn=%s", opts.scheme, p.N(), opts.churn)
	return name
}

// emit prints one benchmark-grammar line for the pass. Custom units flow
// into isgc-bench's Metrics map; names never end in "-<digits>" after the
// last '/', so splitProcs keeps them intact.
func emit(out io.Writer, opts options, p *placement.Placement, res *passResult) {
	fmt.Fprintf(out, "%s/mode=%s %d %d ns/op %d p50-ns %d p95-ns %.1f steps/sec %d repairs %d fallbacks %d full-solves %.3f sim-ms-per-step %d chosen\n",
		benchName(opts, p), res.label, opts.steps,
		res.mean.Nanoseconds(), res.p50.Nanoseconds(), res.p95.Nanoseconds(),
		res.stepsPerSec, res.stats.Repairs, res.stats.Fallbacks, res.stats.FullSolves,
		res.simMsPerStep, res.finalChosenSize)
}
