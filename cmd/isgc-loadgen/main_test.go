package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSmoke drives the full pipeline — structural placement, churn,
// timed decode passes, verification — at a small n for each scheme and
// churn model, asserting the incremental pass actually repairs and that
// the emitted lines follow the isgc-bench grammar.
func TestRunSmoke(t *testing.T) {
	for _, scheme := range []string{"fr", "cr", "hr"} {
		for _, churn := range []string{"drift", "bernoulli", "bursty", "adversarial"} {
			scheme, churn := scheme, churn
			t.Run(scheme+"/"+churn, func(t *testing.T) {
				opts := options{
					scheme: scheme, n: 512, c: 7, hrC1: 3, hrC2: 3, hrGroups: 64,
					steps: 120, churn: churn, rate: 1, seed: 9, mode: "both",
					verify: true, requireRepairs: true,
				}
				if scheme == "fr" {
					opts.c = 8 // FR needs c | n
				}
				var out, errOut bytes.Buffer
				if err := run(opts, &out, &errOut); err != nil {
					t.Fatalf("run: %v\nstderr:\n%s", err, errOut.String())
				}
				var lines []string
				for _, l := range strings.Split(out.String(), "\n") {
					if strings.HasPrefix(l, "BenchmarkLoadgenDecode/") {
						lines = append(lines, l)
					}
				}
				if len(lines) != 3 { // fresh, incremental, speedup
					t.Fatalf("want 3 benchmark lines, got %d:\n%s", len(lines), out.String())
				}
				for _, l := range lines {
					fields := strings.Fields(l)
					if len(fields) < 4 || len(fields)%2 != 0 {
						t.Fatalf("malformed benchmark line (odd value/unit pairing): %q", l)
					}
					name := fields[0]
					if i := strings.LastIndexByte(name, '-'); i > strings.LastIndexByte(name, '/') {
						t.Fatalf("name %q would lose a -N suffix to the GOMAXPROCS splitter", name)
					}
				}
				if !strings.Contains(out.String(), "mode=incremental") ||
					!strings.Contains(out.String(), "/speedup") {
					t.Fatalf("missing incremental or speedup line:\n%s", out.String())
				}
			})
		}
	}
}

// TestRunRejectsBadFlags pins the error paths CI depends on: bad scheme,
// bad churn, bad mode, and -require-repairs without an incremental pass.
func TestRunRejectsBadFlags(t *testing.T) {
	var out, errOut bytes.Buffer
	base := options{scheme: "cr", n: 64, c: 3, steps: 10, churn: "drift", rate: 1, mode: "both"}
	for name, mutate := range map[string]func(*options){
		"scheme": func(o *options) { o.scheme = "xx" },
		"churn":  func(o *options) { o.churn = "xx" },
		"mode":   func(o *options) { o.mode = "xx" },
		"steps":  func(o *options) { o.steps = 0 },
		"rate":   func(o *options) { o.rate = 0 },
		"repairs-needs-incremental": func(o *options) {
			o.mode = "fresh"
			o.requireRepairs = true
		},
		"speedup-needs-both": func(o *options) {
			o.mode = "incremental"
			o.minP95Speedup = 2
		},
	} {
		opts := base
		mutate(&opts)
		if err := run(opts, &out, &errOut); err == nil {
			t.Errorf("%s: run accepted invalid options %+v", name, opts)
		}
	}
}
