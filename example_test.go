package isgc_test

import (
	"fmt"
	"log"

	"isgc"
)

// The paper's Fig. 1(d): CR(4,2) recovers the full gradient from just two
// non-conflicting workers, a configuration where classic gradient coding
// recovers nothing.
func Example() {
	scheme, err := isgc.NewCR(4, 2, 1)
	if err != nil {
		log.Fatal(err)
	}
	chosen := scheme.Decode([]int{1, 3}) // workers 0 and 2 straggled
	fmt.Println("chosen:", chosen)
	fmt.Println("recovered:", scheme.Recovered(chosen))
	fmt.Printf("fraction: %.2f\n", scheme.RecoveredFraction([]int{1, 3}))
	// Output:
	// chosen: [1 3]
	// recovered: [0 1 2 3]
	// fraction: 1.00
}

// Hybrid repetition interpolates between CR and FR: higher c1 removes
// conflict edges and improves worst-case recovery.
func ExampleNewHR() {
	for c1 := 0; c1 <= 3; c1++ {
		scheme, err := isgc.NewHR(8, c1, 4-c1, 2, 1)
		if err != nil {
			log.Fatal(err)
		}
		e, err := scheme.ExpectedRecovery(2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("c1=%d E[recovery at w=2]=%.3f\n", c1, e)
	}
	// Output:
	// c1=0 E[recovery at w=2]=0.571
	// c1=1 E[recovery at w=2]=0.607
	// c1=2 E[recovery at w=2]=0.679
	// c1=3 E[recovery at w=2]=0.786
}

// EncodeLocal and Aggregate form the worker/master halves of one step.
func ExampleScheme_EncodeLocal() {
	scheme, err := isgc.NewFR(4, 2, 1)
	if err != nil {
		log.Fatal(err)
	}
	// Worker 0 holds partitions {0, 1}; it uploads their plain sum.
	coded, err := scheme.EncodeLocal(0, [][]float64{{1, 2}, {3, 4}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(coded)
	// Output: [4 6]
}

// AlphaBounds gives the paper's Theorems 10-11 guarantees without any
// sampling.
func ExampleScheme_AlphaBounds() {
	scheme, err := isgc.NewCR(12, 3, 1)
	if err != nil {
		log.Fatal(err)
	}
	for _, w := range []int{3, 6, 12} {
		lo, hi := scheme.AlphaBounds(w)
		fmt.Printf("w=%d: %d..%d independent workers\n", w, lo, hi)
	}
	// Output:
	// w=3: 1..3 independent workers
	// w=6: 2..4 independent workers
	// w=12: 4..4 independent workers
}
