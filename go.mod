module isgc

go 1.22
