// Benchmarks regenerating every table and figure of the paper's evaluation
// (Sec. VIII), plus micro-benchmarks for the decoders whose linear-time
// complexity the paper proves. Run them all with:
//
//	go test -bench=. -benchmem
//
// The figure benchmarks execute a scaled-down experiment per iteration and
// report the headline series values as custom metrics (the full-size
// tables come from cmd/isgc-experiments).
package isgc

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"isgc/internal/bitset"
	"isgc/internal/cluster"
	"isgc/internal/dataset"
	"isgc/internal/engine"
	"isgc/internal/experiments"
	"isgc/internal/gc"
	"isgc/internal/graph"
	core "isgc/internal/isgc"
	"isgc/internal/model"
	"isgc/internal/placement"
)

// --- Figure reproductions -------------------------------------------------

// BenchmarkFig11a regenerates Fig. 11(a): average step time with n=24,
// c=2 and exponential stragglers of mean 1.5 s on 12/24 workers.
func BenchmarkFig11a(b *testing.B) {
	benchFig11(b, experiments.DefaultFig11a())
}

// BenchmarkFig11b regenerates Fig. 11(b): the same with delay mean 3 s.
func BenchmarkFig11b(b *testing.B) {
	benchFig11(b, experiments.DefaultFig11b())
}

func benchFig11(b *testing.B, cfg experiments.Fig11Config) {
	b.Helper()
	cfg.Steps = 100
	var rows []experiments.Fig11Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = experiments.Fig11(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Scheme == "Sync-SGD" && r.SlowCount == 12 {
			b.ReportMetric(float64(r.MeanStep)/1e6, "sync-step-ms")
		}
		if r.Scheme == "IS-GC(w=12)" && r.SlowCount == 12 {
			b.ReportMetric(float64(r.MeanStep)/1e6, "isgc-w12-step-ms")
		}
	}
}

// BenchmarkFig12 regenerates all four panels of Fig. 12 (recovery, steps
// to threshold, step time, total time) on the n=4, c=2 training workload.
func BenchmarkFig12(b *testing.B) {
	cfg := experiments.DefaultFig12()
	cfg.Trials = 2
	var rows []experiments.Fig12Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = experiments.Fig12(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	if r := experiments.FindRow(rows, "IS-GC-FR", 2); r != nil {
		b.ReportMetric(r.Recovered, "fr-w2-recovered")
		b.ReportMetric(r.Steps, "fr-w2-steps")
		b.ReportMetric(float64(r.TotalTime)/1e9, "fr-w2-total-s")
	}
	if r := experiments.FindRow(rows, "IS-SGD", 2); r != nil {
		b.ReportMetric(r.Recovered, "issgd-w2-recovered")
		b.ReportMetric(float64(r.TotalTime)/1e9, "issgd-w2-total-s")
	}
}

// BenchmarkFig13 regenerates both panels of Fig. 13: the HR(8, c1, 4-c1)
// recovery trade-off and the w=2 loss curves.
func BenchmarkFig13(b *testing.B) {
	cfg := experiments.DefaultFig13()
	cfg.Trials = 2
	cfg.LossSteps = 60
	var rows []experiments.Fig13Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, _, err = experiments.Fig13(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	if r := experiments.FindFig13Row(rows, 0, 2); r != nil {
		b.ReportMetric(r.Recovered, "cr-end-w2-recovered")
	}
	if r := experiments.FindFig13Row(rows, 3, 2); r != nil {
		b.ReportMetric(r.Recovered, "fr-end-w2-recovered")
	}
}

// BenchmarkBounds regenerates the Theorems 10-11 validation table.
func BenchmarkBounds(b *testing.B) {
	cfg := experiments.DefaultBounds()
	cfg.Trials = 60
	var rows []experiments.BoundsRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = experiments.Bounds(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	ok := 0
	for _, r := range rows {
		if r.WithinBounds {
			ok++
		}
	}
	b.ReportMetric(float64(ok)/float64(len(rows)), "within-bounds-frac")
}

// BenchmarkAblationGatherPolicies regenerates the gather-policy ablation
// (fixed w vs the Sec. IV adaptive-w and deadline policies).
func BenchmarkAblationGatherPolicies(b *testing.B) {
	cfg := experiments.DefaultAblations()
	cfg.Trials = 1
	cfg.MaxSteps = 30
	var rows []experiments.GatherRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = experiments.GatherPolicies(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Policy == "fixed w=2" {
			b.ReportMetric(r.Recovered, "w2-recovered")
		}
	}
}

// BenchmarkAblationEnduringStraggler regenerates the Fig. 12(a)-footnote
// ablation (homogeneous vs pinned stragglers).
func BenchmarkAblationEnduringStraggler(b *testing.B) {
	cfg := experiments.DefaultAblations()
	cfg.Trials = 1
	cfg.MaxSteps = 30
	var rows []experiments.EnduringStragglerRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = experiments.EnduringStraggler(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(rows) == 3 {
		b.ReportMetric(rows[2].Recovered, "cross-pinned-recovered")
	}
}

// BenchmarkAblationDecoderQuality regenerates the decoder-quality ablation
// (single-start greedy vs the paper's multi-start decoder vs the oracle).
func BenchmarkAblationDecoderQuality(b *testing.B) {
	var rows []experiments.DecoderQualityRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = experiments.DecoderQuality(12, 3, 200, 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Decoder == "single-start greedy" {
			b.ReportMetric(r.OptimalFraction, "single-start-optimal-frac")
		}
	}
}

// BenchmarkAblationBias regenerates the bias study quantifying the paper's
// Sec. I motivation (IS-SGD biased under an enduring straggler on skewed
// partitions; IS-GC-FR is not).
func BenchmarkAblationBias(b *testing.B) {
	cfg := experiments.DefaultBias()
	cfg.Trials = 1
	cfg.Steps = 60
	var rows []experiments.BiasRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = experiments.Bias(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.Scheme {
		case "IS-SGD":
			b.ReportMetric(r.Partition0Inclusion, "issgd-part0-inclusion")
		case "IS-GC-FR":
			b.ReportMetric(r.Partition0Inclusion, "isgc-part0-inclusion")
		}
	}
}

// --- Decoder micro-benchmarks ----------------------------------------------
// The paper proves Algorithms 1-3 decode in O(|W'|); these benchmarks show
// the measured scaling for each scheme and size.

func randAvailability(rng *rand.Rand, n int, keep float64) *bitset.Set {
	s := bitset.New(n)
	for v := 0; v < n; v++ {
		if rng.Float64() < keep {
			s.Add(v)
		}
	}
	if s.Empty() {
		s.Add(rng.Intn(n))
	}
	return s
}

func benchDecode(b *testing.B, mk func(n int) (*placement.Placement, error), n int) {
	b.Helper()
	p, err := mk(n)
	if err != nil {
		b.Fatal(err)
	}
	s := core.New(p, 1)
	rng := rand.New(rand.NewSource(2))
	avails := make([]*bitset.Set, 64)
	for i := range avails {
		avails[i] = randAvailability(rng, n, 0.5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Decode(avails[i%len(avails)])
	}
}

func BenchmarkDecodeFR(b *testing.B) {
	for _, n := range []int{24, 96, 384} {
		b.Run(itoa(n), func(b *testing.B) {
			benchDecode(b, func(n int) (*placement.Placement, error) { return placement.FR(n, 4) }, n)
		})
	}
}

func BenchmarkDecodeCR(b *testing.B) {
	for _, n := range []int{24, 96, 384} {
		b.Run(itoa(n), func(b *testing.B) {
			benchDecode(b, func(n int) (*placement.Placement, error) { return placement.CR(n, 4) }, n)
		})
	}
}

func BenchmarkDecodeHR(b *testing.B) {
	for _, n := range []int{24, 96, 384} {
		b.Run(itoa(n), func(b *testing.B) {
			benchDecode(b, func(n int) (*placement.Placement, error) { return placement.HR(n, 2, 2, n/4) }, n)
		})
	}
}

// BenchmarkDecodeExactOracle shows why the scheme-specific decoders matter:
// the general branch-and-bound MIS oracle on the same instances.
func BenchmarkDecodeExactOracle(b *testing.B) {
	p, err := placement.CR(24, 4)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	avails := make([]*bitset.Set, 16)
	for i := range avails {
		avails[i] = randAvailability(rng, 24, 0.5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graph.MaxIndependentSet(p.ConflictGraph(), avails[i%len(avails)])
	}
}

// BenchmarkStreamDecode measures the incremental decoder: cost of one
// Add + Current refresh on a CR(96, 4) step with workers arriving one at
// a time (the online regime of Sec. V-A).
func BenchmarkStreamDecode(b *testing.B) {
	p, err := placement.CR(96, 4)
	if err != nil {
		b.Fatal(err)
	}
	s := core.New(p, 1)
	rng := rand.New(rand.NewSource(5))
	order := rng.Perm(96)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sd := core.NewStreamDecoder(s)
		for _, w := range order[:48] {
			if err := sd.Add(w); err != nil {
				b.Fatal(err)
			}
			sd.RecoveredPartitions() // force the refresh after each arrival
		}
	}
}

// BenchmarkClassicGCDecode measures the baseline's decode solve
// (aᵀB_{W'} = 1ᵀ by Gaussian elimination), which IS-GC replaces with the
// independent-set selection.
func BenchmarkClassicGCDecode(b *testing.B) {
	for _, n := range []int{12, 24, 48} {
		b.Run(itoa(n), func(b *testing.B) {
			code, err := gc.NewCR(n, 3, 1)
			if err != nil {
				b.Fatal(err)
			}
			avail := bitset.New(n)
			for v := 0; v < n-2; v++ {
				avail.Add(v)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := code.DecodeCoefficients(avail); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEncode measures the worker-side plain-sum encoding for a
// realistic gradient dimension.
func BenchmarkEncode(b *testing.B) {
	p, err := placement.CR(24, 4)
	if err != nil {
		b.Fatal(err)
	}
	s := core.New(p, 1)
	const dim = 4096
	local := make([][]float64, 4)
	rng := rand.New(rand.NewSource(4))
	for j := range local {
		local[j] = make([]float64, dim)
		for k := range local[j] {
			local[j][k] = rng.NormFloat64()
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.EncodePartial(0, local); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConflictGraphConstruction measures the one-time per-scheme setup
// cost (adjacency bitsets from the placement).
func BenchmarkConflictGraphConstruction(b *testing.B) {
	for _, n := range []int{24, 96, 384} {
		b.Run(itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := placement.CR(n, 4); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return "n=" + string(buf[i:])
}

// --- Gradient-kernel benchmarks --------------------------------------------
// The compute pipeline's hot path: a dim≈2^16 MLP (128 features, 500
// hidden units, 4 classes → 66,504 parameters), per-partition batches of
// 64 samples. Grad is the legacy allocating kernel, GradInto the
// scratch-pooled one, and the Sharded variants split the batch across the
// compute pool — the multi-core speedup the PR's acceptance criterion
// asks for.

func benchMLPWorkload() (model.MLP, []float64, []dataset.Sample) {
	m := model.MLP{Features: 128, Hidden: 500, Classes: 4}
	params := m.InitParams(1)
	rng := rand.New(rand.NewSource(2))
	batch := make([]dataset.Sample, 64)
	for i := range batch {
		x := make([]float64, m.Features)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		batch[i] = dataset.Sample{X: x, Y: float64(rng.Intn(m.Classes))}
	}
	return m, params, batch
}

func BenchmarkMLPGrad(b *testing.B) {
	m, params, batch := benchMLPWorkload()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Grad(params, batch)
	}
}

func BenchmarkMLPGradInto(b *testing.B) {
	m, params, batch := benchMLPWorkload()
	dst := make([]float64, m.Dim())
	m.GradInto(dst, params, batch) // warm the scratch pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.GradInto(dst, params, batch)
	}
}

func BenchmarkMLPGradIntoSharded(b *testing.B) {
	m, params, batch := benchMLPWorkload()
	for _, par := range []int{2, 4, 0} {
		pool := model.NewParallelGrad(par)
		b.Run("par="+itoa(pool.Par())[len("n="):], func(b *testing.B) {
			dst := make([]float64, m.Dim())
			pool.GradInto(dst, params, m, batch) // warm the scratch pool
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pool.GradInto(dst, params, m, batch)
			}
		})
		pool.Close()
	}
}

// BenchmarkDecodeCached measures the memoized decode path on the same
// workload as BenchmarkDecodeCR: 64 recurring masks against a 128-entry
// LRU, i.e. the steady state of a long training run.
func BenchmarkDecodeCached(b *testing.B) {
	for _, n := range []int{24, 96, 384} {
		b.Run(itoa(n), func(b *testing.B) {
			p, err := placement.CR(n, 4)
			if err != nil {
				b.Fatal(err)
			}
			s := core.New(p, 1)
			s.EnableDecodeCache(128)
			rng := rand.New(rand.NewSource(2))
			avails := make([]*bitset.Set, 64)
			for i := range avails {
				avails[i] = randAvailability(rng, n, 0.5)
				s.Decode(avails[i]) // warm the cache
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Decode(avails[i%len(avails)])
			}
		})
	}
}

// --- Cluster gather benchmarks ---------------------------------------------
// The pipelined-engine + dim-sharded-gather headline numbers: one full
// training step over real loopback TCP at large-model scale — dim = 2^20
// (8 MiB of gradient payload per worker), 16 workers, wait-all. Elapsed in
// the master's step records covers the gather phase alone (broadcast
// excluded), so the reported gather-p95-ns is the tail metric
// BENCH_PR10.json archives and `isgc-bench diff -fail-over` gates in CI.

const gatherBenchDim = 1 << 20

const gatherBenchWorkers = 16

func benchClusterGather(b *testing.B, pipeline bool, shards int) {
	st, err := engine.NewSyncSGD(gatherBenchWorkers)
	if err != nil {
		b.Fatal(err)
	}
	mdl := model.Constant{D: gatherBenchDim}
	data, _, err := dataset.SyntheticLinear(64, 2, 0.1, 1)
	if err != nil {
		b.Fatal(err)
	}
	master, err := cluster.NewMaster(cluster.MasterConfig{
		Addr: "127.0.0.1:0", Strategy: st, Model: mdl, Data: data,
		LearningRate: 0.01, W: gatherBenchWorkers, MaxSteps: b.N, Seed: 42,
		AcceptTimeout: 60 * time.Second, Wire: cluster.WireBinary,
		Pipeline: pipeline,
	})
	if err != nil {
		b.Fatal(err)
	}
	parts, err := data.Partition(gatherBenchWorkers)
	if err != nil {
		b.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < gatherBenchWorkers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			pids := st.Partitions(i)
			loaders := make([]*dataset.Loader, len(pids))
			for j, d := range pids {
				var err error
				loaders[j], err = dataset.NewLoader(parts[d], 4, 42)
				if err != nil {
					b.Error(err)
					return
				}
			}
			wk, err := cluster.NewWorker(cluster.WorkerConfig{
				Addr: master.Addr(), ID: i, Partitions: pids, Loaders: loaders,
				Model: mdl, Encode: cluster.SumEncoder(),
				Wire: cluster.WireBinary, GatherShards: shards,
			})
			if err != nil {
				b.Error(err)
				return
			}
			_, _ = wk.Run()
		}()
	}
	b.SetBytes(int64(gatherBenchWorkers * 8 * gatherBenchDim))
	b.ResetTimer()
	res, err := master.Run()
	if err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	wg.Wait()
	ls := res.Run.LatencySummary()
	b.ReportMetric(float64(ls.P50), "gather-p50-ns")
	b.ReportMetric(float64(ls.P95), "gather-p95-ns")
}

// BenchmarkClusterGather compares the synchronous binaryv1 baseline, the
// pipelined master loop, and the dim-sharded binaryv2 gather at 2 and 4
// lanes per worker. Heavy (each step moves 256 MiB over loopback), so the
// -short CI smoke skips it; BENCH_PR10.json carries the committed numbers.
func BenchmarkClusterGather(b *testing.B) {
	if testing.Short() {
		b.Skip("heavy loopback benchmark: 16 workers at dim 2^20; skipped under -short")
	}
	cases := []struct {
		name     string
		pipeline bool
		shards   int
	}{
		// Subtest names avoid a trailing "-<digits>", which the isgc-bench
		// parser would strip as a GOMAXPROCS suffix.
		{"sync", false, 1},
		{"pipelined", true, 1},
		{"shards=2", false, 2},
		{"shards=4", false, 4},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) { benchClusterGather(b, c.pipeline, c.shards) })
	}
}

// BenchmarkStragglerSampling measures the per-step cost of the delay
// simulation at Fig. 11 scale.
func BenchmarkStragglerSampling(b *testing.B) {
	cfg := experiments.DefaultFig11a()
	cfg.Steps = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Fig11(cfg); err != nil {
			b.Fatal(err)
		}
	}
	_ = time.Now // keep time import for metric conversions above
}
