package isgc

import "testing"

func TestFacadeStreamDecoder(t *testing.T) {
	s, err := NewCR(4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	d := s.NewStreamDecoder()
	if d.Arrived() != 0 || d.RecoveredPartitions() != 0 || d.FullyRecovered() {
		t.Fatal("fresh decoder must be empty")
	}
	if err := d.Add(0); err != nil {
		t.Fatal(err)
	}
	if got := d.Current(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Current = %v", got)
	}
	if d.RecoveredFraction() != 0.5 {
		t.Fatalf("fraction = %v", d.RecoveredFraction())
	}
	if err := d.Add(1); err != nil {
		t.Fatal(err)
	}
	if err := d.Add(3); err != nil {
		t.Fatal(err)
	}
	got := d.Current()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("Current = %v, want [1 3]", got)
	}
	if !d.FullyRecovered() {
		t.Fatal("must be fully recovered")
	}
	if err := d.Add(9); err == nil {
		t.Fatal("out-of-range worker must error")
	}
	d.Reset()
	if d.Arrived() != 0 {
		t.Fatal("reset failed")
	}
}
