package isgc

import (
	core "isgc/internal/isgc"
)

// StreamDecoder tracks the best decodable worker set as coded gradients
// arrive one at a time (the online view of decoding from Sec. V-A of the
// paper): after every Add the current selection is re-optimized, so a
// master can stop waiting as soon as enough of the gradient is decodable.
// Create one with Scheme.NewStreamDecoder; not safe for concurrent use.
type StreamDecoder struct {
	inner *core.StreamDecoder
	n     int
}

// NewStreamDecoder returns an empty stream decoder for one training step.
func (s *Scheme) NewStreamDecoder() *StreamDecoder {
	return &StreamDecoder{inner: core.NewStreamDecoder(s.inner), n: s.N()}
}

// Add records the arrival of worker w's coded gradient; duplicates are
// ignored, out-of-range ids return an error.
func (d *StreamDecoder) Add(w int) error { return d.inner.Add(w) }

// Arrived returns the number of distinct workers seen so far.
func (d *StreamDecoder) Arrived() int { return d.inner.Arrived() }

// Current returns the sorted worker ids of a maximum non-conflicting set
// over the arrivals so far.
func (d *StreamDecoder) Current() []int { return d.inner.Current().Slice() }

// RecoveredPartitions returns how many partitions the current best set
// covers.
func (d *StreamDecoder) RecoveredPartitions() int { return d.inner.RecoveredPartitions() }

// RecoveredFraction returns RecoveredPartitions()/n.
func (d *StreamDecoder) RecoveredFraction() float64 {
	return float64(d.inner.RecoveredPartitions()) / float64(d.n)
}

// FullyRecovered reports whether waiting for more workers cannot improve
// the recovery further.
func (d *StreamDecoder) FullyRecovered() bool { return d.inner.FullyRecovered() }

// Reset clears all arrivals for the next training step.
func (d *StreamDecoder) Reset() { d.inner.Reset() }
