package isgc

import (
	"math/rand"
	"testing"
)

func TestFacadeConstructors(t *testing.T) {
	if _, err := NewFR(4, 2, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := NewFR(5, 2, 1); err == nil {
		t.Error("NewFR must reject c∤n")
	}
	if _, err := NewCR(7, 3, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := NewCR(4, 0, 1); err == nil {
		t.Error("NewCR must reject c=0")
	}
	if _, err := NewHR(8, 2, 2, 2, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := NewHR(12, 1, 1, 2, 1); err == nil {
		t.Error("NewHR must reject out-of-range n0")
	}
}

func TestFacadeAccessors(t *testing.T) {
	s, err := NewCR(4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 4 || s.C() != 2 {
		t.Fatal("N/C wrong")
	}
	if got := s.Partitions(1); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Partitions(1) = %v", got)
	}
	if !s.Conflicts(0, 1) || s.Conflicts(0, 2) {
		t.Fatal("Conflicts wrong")
	}
	if s.String() != "CR(n=4,c=2)" {
		t.Fatalf("String = %q", s.String())
	}
	lo, hi := s.AlphaBounds(2)
	if lo != 1 || hi != 2 {
		t.Fatalf("AlphaBounds(2) = %d,%d", lo, hi)
	}
}

func TestFacadeDecodePaperExample(t *testing.T) {
	// Fig. 1(d): CR(4,2), available {W2, W4} (0-indexed {1, 3}) recovers
	// everything.
	s, err := NewCR(4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	chosen := s.Decode([]int{1, 3})
	if len(chosen) != 2 {
		t.Fatalf("chosen = %v", chosen)
	}
	if got := s.RecoveredFraction([]int{1, 3}); got != 1.0 {
		t.Fatalf("fraction = %v", got)
	}
	parts := s.Recovered(chosen)
	if len(parts) != 4 {
		t.Fatalf("parts = %v", parts)
	}
}

func TestFacadeEncodeAggregateRoundTrip(t *testing.T) {
	s, err := NewCR(4, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	grads := make([][]float64, 4)
	for d := range grads {
		grads[d] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	coded := make([][]float64, 4)
	for i := 0; i < 4; i++ {
		local := make([][]float64, s.C())
		for j, d := range s.Partitions(i) {
			local[j] = grads[d]
		}
		var err error
		coded[i], err = s.EncodeLocal(i, local)
		if err != nil {
			t.Fatal(err)
		}
	}
	ghat, parts, chosen, err := s.DecodeAndAggregate([]int{1, 3}, coded)
	if err != nil {
		t.Fatal(err)
	}
	if len(chosen) != 2 || len(parts) != 4 {
		t.Fatalf("chosen=%v parts=%v", chosen, parts)
	}
	want := make([]float64, 2)
	for _, g := range grads {
		want[0] += g[0]
		want[1] += g[1]
	}
	for k := range want {
		if diff := want[k] - ghat[k]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("ĝ = %v, want %v", ghat, want)
		}
	}
	// Aggregate alone agrees.
	g2, p2, err := s.Aggregate(chosen, coded)
	if err != nil {
		t.Fatal(err)
	}
	if len(p2) != 4 || g2[0] != ghat[0] {
		t.Fatal("Aggregate mismatch")
	}
}

func TestFacadeVerify(t *testing.T) {
	s, err := NewCR(4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := s.Verify([]int{1, 3}); err != nil || n != 4 {
		t.Fatalf("Verify({1,3}) = %d, %v", n, err)
	}
	if _, err := s.Verify([]int{0, 1}); err == nil {
		t.Error("Verify must reject conflicting workers")
	}
	if _, err := s.Verify([]int{9}); err == nil {
		t.Error("Verify must reject out-of-range workers")
	}
	if n, err := s.Verify(nil); err != nil || n != 0 {
		t.Errorf("Verify(∅) = %d, %v", n, err)
	}
}

func TestFacadeExpectedRecovery(t *testing.T) {
	fr, err := NewFR(4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fr.ExpectedRecovery(2)
	if err != nil {
		t.Fatal(err)
	}
	if diff := got - 5.0/6; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("E[FR(4,2) recovery at w=2] = %v, want 5/6", got)
	}
	cr, err := NewCR(4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	gotCR, err := cr.ExpectedRecovery(2)
	if err != nil {
		t.Fatal(err)
	}
	if diff := gotCR - 2.0/3; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("E[CR(4,2) recovery at w=2] = %v, want 2/3", gotCR)
	}
	if _, err := fr.ExpectedRecovery(0); err == nil {
		t.Error("w=0 must error")
	}
}

func TestFacadeDecodeEmptyAndJunk(t *testing.T) {
	s, err := NewHR(8, 2, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Decode(nil); len(got) != 0 {
		t.Fatalf("Decode(nil) = %v", got)
	}
	if got := s.Decode([]int{100, 200}); len(got) != 0 {
		t.Fatalf("Decode(junk) = %v", got)
	}
}
